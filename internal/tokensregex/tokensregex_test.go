package tokensregex

import (
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/grammar"
)

func sentence(text string) *corpus.Sentence {
	c := corpus.New("t", "t")
	c.Add(text, corpus.Positive)
	c.Preprocess(corpus.PreprocessOptions{})
	return c.Sentence(0)
}

func TestHeuristicMatches(t *testing.T) {
	s := sentence("What is the best way to get to SFO airport?")
	tests := []struct {
		phrase []string
		want   bool
	}{
		{[]string{"best", "way", "to"}, true},
		{[]string{"best", "way", "to", "get"}, true},
		{[]string{"way", "best"}, false},
		{[]string{"shuttle"}, false},
		{[]string{"sfo", "airport"}, true},
		{[]string{"BEST"}, true}, // normalization
		{[]string{"best", "*", "to"}, true},
		{[]string{"best", "*", "get"}, false},
		{nil, false},
	}
	for _, tt := range tests {
		h := NewHeuristic(tt.phrase)
		if got := h.Matches(s); got != tt.want {
			t.Errorf("Matches(%v) = %v, want %v", tt.phrase, got, tt.want)
		}
	}
	h := NewHeuristic([]string{"best"})
	if h.Matches(nil) {
		t.Error("Matches(nil sentence) = true")
	}
}

func TestHeuristicKeyAndString(t *testing.T) {
	h := NewHeuristic([]string{"Best", "Way"})
	if h.Key() != "tokensregex:best way" {
		t.Errorf("Key = %q", h.Key())
	}
	if h.String() != "'best way'" {
		t.Errorf("String = %q", h.String())
	}
	if h.GrammarName() != GrammarName {
		t.Errorf("GrammarName = %q", h.GrammarName())
	}
	if h.Depth() != 2 {
		t.Errorf("Depth = %d", h.Depth())
	}
	ph := h.Phrase()
	ph[0] = "mutated"
	if h.Phrase()[0] != "best" {
		t.Error("Phrase() exposes internal state")
	}
}

func TestHeuristicParents(t *testing.T) {
	h := NewHeuristic([]string{"best", "way", "to"})
	parents := h.Parents()
	if len(parents) != 2 {
		t.Fatalf("parents = %v", parents)
	}
	keys := map[string]bool{}
	for _, p := range parents {
		keys[p.Key()] = true
		if p.Depth() != 2 {
			t.Errorf("parent depth = %d", p.Depth())
		}
	}
	if !keys["tokensregex:best way"] || !keys["tokensregex:way to"] {
		t.Errorf("unexpected parents: %v", keys)
	}

	single := NewHeuristic([]string{"shuttle"})
	sp := single.Parents()
	if len(sp) != 1 || !grammar.IsRoot(sp[0]) {
		t.Errorf("single-token parents = %v", sp)
	}

	// Identical first/last drop: "a a" -> only one parent "a".
	dup := NewHeuristic([]string{"a", "a"})
	if len(dup.Parents()) != 1 {
		t.Errorf("duplicate-token parents = %v", dup.Parents())
	}
}

func TestSketch(t *testing.T) {
	g := New()
	s := sentence("best way to get")
	hs := g.Sketch(s, 2)
	keys := map[string]bool{}
	for _, h := range hs {
		keys[h.Key()] = true
		if !h.Matches(s) {
			t.Errorf("sketch heuristic %s does not match its own sentence", h.Key())
		}
		if h.Depth() > 2 {
			t.Errorf("sketch heuristic %s exceeds maxDepth", h.Key())
		}
	}
	for _, want := range []string{"tokensregex:best", "tokensregex:best way", "tokensregex:way to", "tokensregex:to get", "tokensregex:get"} {
		if !keys[want] {
			t.Errorf("sketch missing %s (got %v)", want, keys)
		}
	}
	// Stop-word unigrams are skipped by default.
	if keys["tokensregex:to"] {
		t.Error("stop-word unigram 'to' present in sketch")
	}
	g2 := &Grammar{SkipStopwordUnigrams: false}
	keys2 := map[string]bool{}
	for _, h := range g2.Sketch(s, 1) {
		keys2[h.Key()] = true
	}
	if !keys2["tokensregex:to"] {
		t.Error("stop-word unigram missing with SkipStopwordUnigrams=false")
	}
	if g.Sketch(nil, 2) != nil {
		t.Error("Sketch(nil) should be nil")
	}
	if g.Sketch(s, 0) != nil {
		t.Error("Sketch maxDepth=0 should be nil")
	}
}

func TestSketchDeduplicates(t *testing.T) {
	g := New()
	s := sentence("shuttle shuttle shuttle")
	hs := g.Sketch(s, 2)
	seen := map[string]int{}
	for _, h := range hs {
		seen[h.Key()]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("duplicate sketch entry %s (%d times)", k, n)
		}
	}
}

func TestParse(t *testing.T) {
	g := New()
	h, err := g.Parse("Best way TO")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if h.Key() != "tokensregex:best way to" {
		t.Errorf("Key = %q", h.Key())
	}
	if _, err := g.Parse("   "); err == nil {
		t.Error("empty rule should error")
	}
	if _, err := g.Parse("!!! ???"); err == nil {
		t.Error("punctuation-only rule should error")
	}
	wc, err := g.Parse("shuttle * the hotel")
	if err != nil {
		t.Fatalf("wildcard parse: %v", err)
	}
	if wc.(*Heuristic).Phrase()[1] != Wildcard {
		t.Errorf("wildcard lost: %v", wc.(*Heuristic).Phrase())
	}
}

func TestSpecialize(t *testing.T) {
	g := New()
	s := sentence("the best way to get to the hotel")
	h := NewHeuristic([]string{"way", "to"})
	children := g.Specialize(h, s, 10)
	keys := map[string]bool{}
	for _, c := range children {
		keys[c.Key()] = true
		if c.Depth() != 3 {
			t.Errorf("child depth = %d", c.Depth())
		}
		if !c.Matches(s) {
			t.Errorf("child %s does not match witness", c.Key())
		}
	}
	if !keys["tokensregex:best way to"] || !keys["tokensregex:way to get"] {
		t.Errorf("expected extensions missing: %v", keys)
	}
	// Depth cap.
	if got := g.Specialize(h, s, 2); got != nil {
		t.Errorf("Specialize beyond maxDepth returned %v", got)
	}
	// Root specialization yields unigrams.
	rootKids := g.Specialize(grammar.Root(), s, 10)
	if len(rootKids) == 0 {
		t.Error("root specialization empty")
	}
	// Nil sentence.
	if g.Specialize(h, nil, 10) != nil {
		t.Error("Specialize(nil sentence) should be nil")
	}
}

// Property: every parent of a heuristic covers a superset of sentences (on a
// fixed small corpus) — the anti-monotonicity the index relies on.
func TestParentCoverageSuperset(t *testing.T) {
	c := corpus.New("t", "t")
	texts := []string{
		"what is the best way to get to the airport",
		"the best way to order food",
		"is there a shuttle to the hotel",
		"the shuttle to the airport leaves soon",
		"best pizza in town",
		"how do i get to the station",
	}
	for _, txt := range texts {
		c.Add(txt, corpus.Negative)
	}
	c.Preprocess(corpus.PreprocessOptions{})
	g := New()
	for _, s := range c.Sentences {
		for _, h := range g.Sketch(s, 3) {
			cov := map[int]bool{}
			for _, id := range grammar.Coverage(h, c) {
				cov[id] = true
			}
			for _, p := range h.Parents() {
				for _, id := range grammar.Coverage(h, c) {
					_ = id
				}
				pcov := grammar.Coverage(p, c)
				pset := map[int]bool{}
				for _, id := range pcov {
					pset[id] = true
				}
				for id := range cov {
					if !pset[id] && !grammar.IsRoot(p) {
						t.Fatalf("parent %s does not cover sentence %d covered by child %s", p.Key(), id, h.Key())
					}
				}
			}
		}
	}
}

// Property: Matches never panics and Depth equals phrase length for random
// phrases.
func TestHeuristicProperty(t *testing.T) {
	s := sentence("the quick brown fox jumps over the lazy dog")
	f := func(words []string) bool {
		if len(words) > 8 {
			words = words[:8]
		}
		var phrase []string
		for _, w := range words {
			if w != "" {
				phrase = append(phrase, w)
			}
		}
		h := NewHeuristic(phrase)
		_ = h.Matches(s)
		return h.Depth() == len(phrase)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
