package traversal

import (
	"math/rand"
	"testing"
)

// benchFixture builds a synthetic coverage/positives/scores triple shaped
// like the interactive workload: a corpus of n sentences, a rule covering
// covFrac of them, and a positive set of posFrac of them.
func benchFixture(n int, covFrac, posFrac float64, seed int64) (cov []int, pos map[int]bool, scores []float64) {
	rng := rand.New(rand.NewSource(seed))
	scores = make([]float64, n)
	pos = make(map[int]bool)
	for i := 0; i < n; i++ {
		scores[i] = rng.Float64()
		if rng.Float64() < covFrac {
			cov = append(cov, i)
		}
		if rng.Float64() < posFrac {
			pos[i] = true
		}
	}
	return cov, pos, scores
}

// BenchmarkBenefit measures the benefit kernel Σ_{s ∈ C_r \ P} p_s on a rule
// covering ~10% of a 10K-sentence corpus with ~5% discovered positives.
func BenchmarkBenefit(b *testing.B) {
	cov, pos, scores := benchFixture(10000, 0.10, 0.05, 1)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Benefit(cov, pos, scores)
	}
	_ = sink
}

// BenchmarkAvgBenefit measures the per-instance benefit variant.
func BenchmarkAvgBenefit(b *testing.B) {
	cov, pos, scores := benchFixture(10000, 0.10, 0.05, 1)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += AvgBenefit(cov, pos, scores)
	}
	_ = sink
}
