package traversal

// DefaultTau is the default number of unsuccessful attempts before
// HybridSearch toggles between universal and local mode (§3.6).
const DefaultTau = 5

// HybridSearch implements Algorithm 5: it alternates between the
// UniversalSearch and LocalSearch strategies, switching whenever the current
// strategy fails to find a precise rule for τ consecutive attempts. It starts
// in universal mode, as in the paper.
type HybridSearch struct {
	Tau int

	local     *LocalSearch
	universal *UniversalSearch

	universalMode bool
	attempts      int
	// proposedByLocal remembers which queried keys came from the local
	// component, so rejected universal proposals do not pollute the local
	// frontier with their children.
	proposedByLocal map[string]bool
}

// NewHybridSearch returns a HybridSearch with the given τ (values <= 0 use
// DefaultTau) seeded with the given rule keys for its local component.
func NewHybridSearch(tau int, seedKeys ...string) *HybridSearch {
	if tau <= 0 {
		tau = DefaultTau
	}
	// The universal component runs in strict mode: when no rule passes the
	// average-benefit filter (a weak classifier early on), it reports failure
	// so the hybrid immediately falls back to structure-driven LocalSearch
	// instead of querying low-precision rules.
	return &HybridSearch{
		Tau:             tau,
		local:           NewLocalSearch(seedKeys...),
		universal:       &UniversalSearch{Relax: false},
		universalMode:   true,
		proposedByLocal: make(map[string]bool),
	}
}

// Name implements Traversal.
func (hs *HybridSearch) Name() string { return "hybrid" }

// InUniversalMode reports which mode the strategy is currently in (exported
// for tests and diagnostics).
func (hs *HybridSearch) InUniversalMode() bool { return hs.universalMode }

// Next implements Traversal (Algorithm 5 lines 6-13). If the active mode has
// no candidate to propose, it switches immediately rather than stalling.
func (hs *HybridSearch) Next(st *State) (string, bool) {
	if hs.attempts >= hs.Tau {
		hs.toggle()
	}
	hs.attempts++
	if hs.universalMode {
		if key, ok := hs.universal.Next(st); ok {
			return key, true
		}
		hs.toggle()
		key, ok := hs.local.Next(st)
		if ok {
			hs.proposedByLocal[key] = true
		}
		return key, ok
	}
	if key, ok := hs.local.Next(st); ok {
		hs.proposedByLocal[key] = true
		return key, true
	}
	hs.toggle()
	return hs.universal.Next(st)
}

func (hs *HybridSearch) toggle() {
	hs.universalMode = !hs.universalMode
	hs.attempts = 0
}

// Feedback implements Traversal (Algorithm 5 lines 14-20). Accepted rules are
// fed to the local component regardless of which mode proposed them (their
// generalizations are worth exploring); rejected rules only update the local
// frontier when the local component proposed them, so a run of imprecise
// universal proposals does not flood the frontier with their children. A YES
// resets the unsuccessful-attempt counter.
func (hs *HybridSearch) Feedback(st *State, key string, accepted bool) {
	if accepted || hs.proposedByLocal[key] {
		hs.local.Feedback(st, key, accepted)
	}
	hs.universal.Feedback(st, key, accepted)
	if accepted {
		hs.attempts = 0
	}
}

// Reseed implements Traversal.
func (hs *HybridSearch) Reseed(st *State, key string) {
	hs.local.Reseed(st, key)
}

// New constructs a traversal by name: "local", "universal" or "hybrid"
// (anything else falls back to hybrid, the paper's recommended strategy).
func New(name string, tau int, seedKeys ...string) Traversal {
	switch name {
	case "local", "ls":
		return NewLocalSearch(seedKeys...)
	case "universal", "us":
		return NewUniversalSearch()
	default:
		return NewHybridSearch(tau, seedKeys...)
	}
}
