package traversal

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/sketch"
	"repro/internal/tokensregex"
)

func equivFixture(t *testing.T) (*index.Index, *corpus.Corpus) {
	t.Helper()
	texts := []string{
		"what is the best way to get to the airport",
		"is there a shuttle to the hotel from the airport",
		"what is the best way to order food tonight",
		"can i get a pizza to my room right now",
		"the best way to check in there is online",
		"is uber the fastest way to get downtown",
		"would uber eats be the fastest way to order",
		"the shuttle to the airport leaves at nine",
	}
	c := corpus.New("equiv", "t")
	for i := 0; i < 10; i++ {
		for _, txt := range texts {
			c.Add(txt, corpus.Negative)
		}
	}
	c.Preprocess(corpus.PreprocessOptions{})
	reg := grammar.NewRegistry(tokensregex.New())
	ix := index.Build(c, sketch.NewBuilder(reg, 4))
	ix.Prune(2)
	return ix, c
}

// stripBits rebuilds a hierarchy with the same nodes but no coverage bitsets
// (Add never sets Bits), forcing hierarchy-node scoring down the
// posting-list + map reference path.
func stripBits(h *hierarchy.Hierarchy, ix *index.Index) *hierarchy.Hierarchy {
	rebuilt := hierarchy.BuildBits(ix, nil, nil, hierarchy.Config{})
	for _, key := range h.Keys() {
		n := h.Node(key)
		rebuilt.Add(n.Heuristic, n.Coverage)
	}
	rebuilt.LinkEdges(ix)
	return rebuilt
}

// TestBenefitBitsMatchesReference cross-checks the kernel against the
// posting-list scan on random sets, including bit-identical float sums.
func TestBenefitBitsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		var cov []int
		pos := map[int]bool{}
		scores := make([]float64, n)
		for i := 0; i < n; i++ {
			scores[i] = rng.Float64()
			if rng.Intn(3) == 0 {
				cov = append(cov, i)
			}
			if rng.Intn(4) == 0 {
				pos[i] = true
			}
		}
		covBits := bitset.FromSorted(cov)
		posBits := bitset.FromMap(pos)
		want := Benefit(cov, pos, scores)
		got := BenefitBits(covBits, posBits, scores)
		if got != want {
			t.Fatalf("trial %d: BenefitBits = %v, Benefit = %v", trial, got, want)
		}
		wantAvg := AvgBenefit(cov, pos, scores)
		sum, newCov := bitset.AndNotSum(covBits, posBits, scores)
		gotAvg := 0.0
		if newCov > 0 {
			gotAvg = sum / float64(newCov)
		}
		if gotAvg != wantAvg {
			t.Fatalf("trial %d: avg benefit %v != %v", trial, gotAvg, wantAvg)
		}
	}
}

// TestTraversalsIdenticalWithAndWithoutBits drives each strategy over two
// states — one with coverage bitsets (kernel path) and one without (reference
// path) — with identical scripted feedback, and requires identical proposal
// sequences.
func TestTraversalsIdenticalWithAndWithoutBits(t *testing.T) {
	ix, c := equivFixture(t)
	cfg := hierarchy.Config{NumCandidates: 400, MaxRuleDepth: 6, MinCoverage: 2, Cleanup: true}
	seed := "tokensregex:best way to"
	if ix.Node(seed) == nil {
		t.Fatal("seed rule not materialized")
	}
	positives := map[int]bool{}
	for _, id := range ix.Coverage(seed) {
		positives[id] = true
	}
	posBits := bitset.FromMap(positives)
	scores := make([]float64, c.Len())
	rng := rand.New(rand.NewSource(11))
	for i := range scores {
		scores[i] = rng.Float64()
	}

	for _, name := range []string{"local", "universal", "hybrid"} {
		hBits := hierarchy.GenerateBits(ix, posBits, cfg)
		hRef := stripBits(hBits, ix)

		stBits := &State{Hierarchy: hBits, Index: ix, Positives: positives, PosBits: posBits, Scores: scores, Queried: map[string]bool{seed: true}}
		stRef := &State{Hierarchy: hRef, Positives: positives, Scores: scores, Queried: map[string]bool{seed: true}}
		// The reference state needs the index for neighborhood fallbacks, but
		// its hierarchy nodes carry no bits, so scoring stays on the
		// reference path (bitsOf prefers hierarchy nodes).
		stRef.Index = ix

		tb := New(name, 3, seed)
		tr := New(name, 3, seed)
		tb.Reseed(stBits, seed)
		tr.Reseed(stRef, seed)
		steps := 0
		for step := 0; step < 12; step++ {
			kb, okb := tb.Next(stBits)
			kr, okr := tr.Next(stRef)
			if okb != okr || kb != kr {
				t.Fatalf("%s step %d: bits path proposed (%q,%v), reference (%q,%v)", name, step, kb, okb, kr, okr)
			}
			if !okb {
				break
			}
			steps++
			stBits.Queried[kb] = true
			stRef.Queried[kr] = true
			accept := step%3 == 0
			tb.Feedback(stBits, kb, accept)
			tr.Feedback(stRef, kr, accept)
		}
		if steps == 0 {
			t.Fatalf("%s proposed no rules; equivalence test is vacuous", name)
		}
	}
}
