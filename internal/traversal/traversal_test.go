package traversal

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/sketch"
	"repro/internal/tokensregex"
)

// buildState constructs a small directions-style corpus, its index and
// hierarchy, and a State whose classifier scores equal the gold labels
// (a perfect classifier).
func buildState(t *testing.T, positives map[int]bool) (*corpus.Corpus, *State) {
	t.Helper()
	c := corpus.New("tr", "t")
	texts := []struct {
		text string
		gold corpus.Label
	}{
		{"what is the best way to get to the airport", corpus.Positive}, // 0
		{"what is the best way to get to the station", corpus.Positive}, // 1
		{"is there a shuttle to the airport", corpus.Positive},          // 2
		{"is there a shuttle to the hotel", corpus.Positive},            // 3
		{"the shuttle to the airport is free", corpus.Positive},         // 4
		{"which bus goes to the airport", corpus.Positive},              // 5
		{"what is the best way to order food", corpus.Negative},         // 6
		{"what is the best way to check in", corpus.Negative},           // 7
		{"can i order a pizza to my room", corpus.Negative},             // 8
		{"the wifi password is not working", corpus.Negative},           // 9
		{"is breakfast included with my room", corpus.Negative},         // 10
		{"can i get a late checkout", corpus.Negative},                  // 11
	}
	for _, s := range texts {
		c.Add(s.text, s.gold)
	}
	c.Preprocess(corpus.PreprocessOptions{})

	reg := grammar.NewRegistry(tokensregex.New())
	ix := index.Build(c, sketch.NewBuilder(reg, 4))

	if positives == nil {
		positives = map[int]bool{}
	}
	hcfg := hierarchy.Config{NumCandidates: 200, MaxRuleDepth: 4, MinCoverage: 2, Cleanup: true}
	h := hierarchy.Generate(ix, positives, hcfg)

	scores := make([]float64, c.Len())
	for id, s := range c.Sentences {
		if s.Gold == corpus.Positive {
			scores[id] = 0.9
		} else {
			scores[id] = 0.1
		}
	}
	return c, &State{
		Hierarchy: h,
		Index:     ix,
		Positives: positives,
		Scores:    scores,
		Queried:   map[string]bool{},
	}
}

func TestBenefitAndAvgBenefit(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.1, 0.5}
	pos := map[int]bool{0: true}
	cov := []int{0, 1, 2}
	if got := Benefit(cov, pos, scores); got != 0.9 {
		t.Errorf("Benefit = %f, want 0.9 (0.8+0.1)", got)
	}
	if got := AvgBenefit(cov, pos, scores); got != 0.45 {
		t.Errorf("AvgBenefit = %f, want 0.45", got)
	}
	// Fully covered rule has zero average benefit.
	if got := AvgBenefit([]int{0}, pos, scores); got != 0 {
		t.Errorf("AvgBenefit of covered rule = %f", got)
	}
	// Out-of-range IDs contribute nothing.
	if got := Benefit([]int{99}, pos, scores); got != 0 {
		t.Errorf("Benefit with dangling ID = %f", got)
	}
}

func TestUniversalSearchPicksPreciseHighBenefit(t *testing.T) {
	_, st := buildState(t, map[int]bool{0: true})
	us := NewUniversalSearch()
	key, ok := us.Next(st)
	if !ok {
		t.Fatal("no candidate")
	}
	// With a perfect classifier the chosen rule must have average benefit
	// above 0.5 and positive benefit.
	if st.AvgBenefitOf(key) <= MinAvgBenefit {
		t.Errorf("chosen rule %q has avg benefit %.2f", key, st.AvgBenefitOf(key))
	}
	if st.BenefitOf(key) <= 0 {
		t.Errorf("chosen rule %q has benefit %.2f", key, st.BenefitOf(key))
	}
	// Feedback and Reseed are no-ops but must not panic.
	us.Feedback(st, key, true)
	us.Reseed(st, key)
}

func TestUniversalSearchRelaxFallback(t *testing.T) {
	_, st := buildState(t, map[int]bool{0: true})
	// Make every score low so nothing passes the 0.5 filter.
	for i := range st.Scores {
		st.Scores[i] = 0.05
	}
	strict := &UniversalSearch{Relax: false}
	if _, ok := strict.Next(st); ok {
		t.Error("strict universal search should find nothing")
	}
	relaxed := NewUniversalSearch()
	if _, ok := relaxed.Next(st); !ok {
		t.Error("relaxed universal search should fall back")
	}
}

func TestUniversalSearchSkipsQueried(t *testing.T) {
	_, st := buildState(t, map[int]bool{0: true})
	us := NewUniversalSearch()
	first, ok := us.Next(st)
	if !ok {
		t.Fatal("no candidate")
	}
	st.Queried[first] = true
	second, ok := us.Next(st)
	if !ok {
		t.Fatal("no second candidate")
	}
	if second == first {
		t.Error("queried rule proposed again")
	}
}

func TestLocalSearchExploresNeighborhood(t *testing.T) {
	seed := "tokensregex:shuttle to the"
	_, st := buildState(t, map[int]bool{2: true, 3: true, 4: true})
	ls := NewLocalSearch(seed)
	st.Queried[seed] = true
	if ls.CandidateCount() != 1 {
		t.Fatalf("initial candidates = %d", ls.CandidateCount())
	}
	// The seed itself is queried: Next falls back to the hierarchy rule with
	// the best overlap with P rather than stalling.
	if key, ok := ls.Next(st); !ok {
		t.Fatal("Next should bootstrap from the hierarchy when the frontier is exhausted")
	} else if st.Index.CoverageOverlap(key, st.Positives) == 0 {
		t.Errorf("bootstrap pick %q has no overlap with P", key)
	}
	ls.Reseed(st, seed)
	key, ok := ls.Next(st)
	if !ok {
		t.Fatalf("no candidate after reseed (candidates=%d)", ls.CandidateCount())
	}
	// The chosen rule must be a structural neighbor of the seed (parent or
	// child in the index), i.e. share the token "shuttle" or extend the seed.
	if st.Index.Node(key) == nil && st.Hierarchy.Node(key) == nil {
		t.Errorf("chosen rule %q unknown to index and hierarchy", key)
	}

	// Accepting adds parents; rejecting adds children.
	before := ls.CandidateCount()
	ls.Feedback(st, key, true)
	if ls.CandidateCount() == before {
		t.Log("accepting did not grow the candidate set (parents may be exhausted)")
	}
	key2, ok := ls.Next(st)
	if ok {
		st.Queried[key2] = true
		ls.Feedback(st, key2, false)
	}
}

func TestLocalSearchIgnoresRootSeed(t *testing.T) {
	ls := NewLocalSearch(grammar.RootKey, "")
	if ls.CandidateCount() != 0 {
		t.Errorf("root/empty seeds should be ignored: %d", ls.CandidateCount())
	}
	if ls.Name() != "local" {
		t.Errorf("Name = %q", ls.Name())
	}
}

func TestHybridSearchTogglesAfterTau(t *testing.T) {
	_, st := buildState(t, map[int]bool{0: true})
	hs := NewHybridSearch(2, "tokensregex:best way to get to")
	if !hs.InUniversalMode() {
		t.Fatal("hybrid should start in universal mode")
	}
	// Two consecutive rejected proposals exhaust τ=2 and flip the mode on the
	// third call.
	for i := 0; i < 2; i++ {
		key, ok := hs.Next(st)
		if !ok {
			t.Fatalf("no candidate at attempt %d", i)
		}
		st.Queried[key] = true
		hs.Feedback(st, key, false)
	}
	if _, ok := hs.Next(st); !ok {
		t.Fatal("no candidate after toggle")
	}
	if hs.InUniversalMode() {
		t.Error("hybrid did not toggle to local mode after τ failures")
	}
	// An acceptance resets the attempt counter.
	key, ok := hs.Next(st)
	if ok {
		st.Queried[key] = true
		hs.Feedback(st, key, true)
	}
}

func TestHybridSearchDefaults(t *testing.T) {
	hs := NewHybridSearch(0)
	if hs.Tau != DefaultTau {
		t.Errorf("Tau = %d, want %d", hs.Tau, DefaultTau)
	}
	if hs.Name() != "hybrid" {
		t.Errorf("Name = %q", hs.Name())
	}
}

func TestNewByName(t *testing.T) {
	if New("local", 5).Name() != "local" {
		t.Error("New(local)")
	}
	if New("us", 5).Name() != "universal" {
		t.Error("New(us)")
	}
	if New("hybrid", 5).Name() != "hybrid" {
		t.Error("New(hybrid)")
	}
	if New("anything-else", 5).Name() != "hybrid" {
		t.Error("fallback should be hybrid")
	}
}

func TestPickBestSkipsExhaustedRules(t *testing.T) {
	_, st := buildState(t, nil)
	// Mark every sentence as already positive: every rule adds nothing.
	for id := 0; id < len(st.Scores); id++ {
		st.Positives[id] = true
	}
	if key, ok := pickBest(st, st.Hierarchy.NonRootKeys(), 0); ok {
		t.Errorf("pickBest returned %q although nothing adds new coverage", key)
	}
}
