package traversal

// MinAvgBenefit is the per-instance benefit threshold of Algorithm 4: rules
// whose average benefit is at most 0.5 (the majority of their uncovered
// instances are expected to be negative) are skipped by UniversalSearch.
const MinAvgBenefit = 0.5

// UniversalSearch implements Algorithm 4: in every iteration it considers
// every heuristic in the hierarchy, skips those with average benefit <= 0.5,
// and proposes the one with the maximum total benefit, regardless of where it
// sits in the hierarchy.
type UniversalSearch struct {
	// Relax controls the fallback behaviour when no candidate passes the
	// average-benefit filter: if true (default via NewUniversalSearch), the
	// filter is dropped for that round rather than stalling the pipeline.
	Relax bool
}

// NewUniversalSearch returns a UniversalSearch with the default fallback.
func NewUniversalSearch() *UniversalSearch { return &UniversalSearch{Relax: true} }

// Name implements Traversal.
func (us *UniversalSearch) Name() string { return "universal" }

// Next implements Traversal.
func (us *UniversalSearch) Next(st *State) (string, bool) {
	keys := st.Hierarchy.NonRootKeys()
	if key, ok := pickBest(st, keys, MinAvgBenefit); ok {
		return key, true
	}
	if us.Relax {
		return pickBest(st, keys, 0)
	}
	return "", false
}

// Feedback implements Traversal. UniversalSearch is stateless between
// iterations: the hierarchy and classifier scores in the State carry all the
// information it needs.
func (us *UniversalSearch) Feedback(st *State, key string, accepted bool) {}

// Reseed implements Traversal (no-op).
func (us *UniversalSearch) Reseed(st *State, key string) {}
