// Package traversal implements the three hierarchy-traversal strategies of
// §3.3–3.6: LocalSearch (Algorithm 3), UniversalSearch (Algorithm 4) and
// HybridSearch (Algorithm 5). A traversal decides which candidate heuristic
// to submit to the oracle next, based on the benefit score
//
//	benefit(r) = Σ_{s ∈ C_r \ P} p_s
//
// where p_s is the classifier's probability that sentence s is positive.
package traversal

import (
	"sort"

	"repro/internal/grammar"
	"repro/internal/hierarchy"
	"repro/internal/index"
)

// State is the shared, mutable view of the discovery loop that traversals
// read: the current hierarchy, the index, the set of discovered positives,
// the classifier scores, and the set of already-queried rule keys.
type State struct {
	Hierarchy *hierarchy.Hierarchy
	Index     *index.Index
	// Positives is the discovered positive set P (sentence IDs).
	Positives map[int]bool
	// Scores holds p_s for every sentence (indexed by sentence ID).
	Scores []float64
	// Queried marks rule keys already submitted to the oracle.
	Queried map[string]bool
}

// coverageOf returns the coverage of a rule key, preferring the hierarchy
// node (which is guaranteed present for hierarchy-generated candidates) and
// falling back to the index.
func (st *State) coverageOf(key string) []int {
	if n := st.Hierarchy.Node(key); n != nil {
		return n.Coverage
	}
	return st.Index.Coverage(key)
}

// Benefit computes Σ_{s ∈ cov \ P} p_s.
func Benefit(cov []int, positives map[int]bool, scores []float64) float64 {
	var b float64
	for _, id := range cov {
		if positives[id] {
			continue
		}
		if id >= 0 && id < len(scores) {
			b += scores[id]
		}
	}
	return b
}

// AvgBenefit computes the benefit per (new) instance: Benefit / |cov \ P|.
// Rules whose coverage is already fully contained in P have average benefit 0.
func AvgBenefit(cov []int, positives map[int]bool, scores []float64) float64 {
	newCount := 0
	for _, id := range cov {
		if !positives[id] {
			newCount++
		}
	}
	if newCount == 0 {
		return 0
	}
	return Benefit(cov, positives, scores) / float64(newCount)
}

// BenefitOf scores a rule key against the state.
func (st *State) BenefitOf(key string) float64 {
	return Benefit(st.coverageOf(key), st.Positives, st.Scores)
}

// AvgBenefitOf returns the per-instance benefit of a rule key.
func (st *State) AvgBenefitOf(key string) float64 {
	return AvgBenefit(st.coverageOf(key), st.Positives, st.Scores)
}

// Traversal selects the next candidate heuristic to submit to the oracle.
type Traversal interface {
	// Name identifies the strategy ("local", "universal", "hybrid").
	Name() string
	// Next returns the key of the next rule to query, or false if the
	// strategy has no candidate to propose.
	Next(st *State) (string, bool)
	// Feedback informs the strategy of the oracle's answer for a rule it
	// proposed.
	Feedback(st *State, key string, accepted bool)
	// Reseed registers an accepted seed rule (or any externally accepted
	// rule) so local strategies can explore around it.
	Reseed(st *State, key string)
}

// pickBest returns the unqueried key with the highest benefit, breaking ties
// by higher new coverage then lexicographic key for determinism. The boolean
// reports whether any eligible candidate exists.
func pickBest(st *State, keys []string, requireAvgBenefit float64) (string, bool) {
	bestKey := ""
	bestBenefit := -1.0
	bestNew := -1
	for _, key := range keys {
		if st.Queried[key] || key == grammar.RootKey {
			continue
		}
		cov := st.coverageOf(key)
		if len(cov) == 0 {
			continue
		}
		if requireAvgBenefit > 0 && AvgBenefit(cov, st.Positives, st.Scores) <= requireAvgBenefit {
			continue
		}
		b := Benefit(cov, st.Positives, st.Scores)
		newCov := 0
		for _, id := range cov {
			if !st.Positives[id] {
				newCov++
			}
		}
		if newCov == 0 {
			continue
		}
		if b > bestBenefit || (b == bestBenefit && newCov > bestNew) ||
			(b == bestBenefit && newCov == bestNew && (bestKey == "" || key < bestKey)) {
			bestKey, bestBenefit, bestNew = key, b, newCov
		}
	}
	return bestKey, bestKey != ""
}

// sortedKeys returns the keys of a string set in sorted order.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
