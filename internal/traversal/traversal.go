// Package traversal implements the three hierarchy-traversal strategies of
// §3.3–3.6: LocalSearch (Algorithm 3), UniversalSearch (Algorithm 4) and
// HybridSearch (Algorithm 5). A traversal decides which candidate heuristic
// to submit to the oracle next, based on the benefit score
//
//	benefit(r) = Σ_{s ∈ C_r \ P} p_s
//
// where p_s is the classifier's probability that sentence s is positive.
//
// Scoring runs on the dense bitset coverage kernel when the state carries a
// bitset positive set and the rule's coverage bits are materialized (the
// session hot path); the posting-list + map implementations remain as the
// reference path and are bit-identical, since both accumulate scores in
// ascending sentence-ID order.
package traversal

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/grammar"
	"repro/internal/hierarchy"
	"repro/internal/index"
)

// State is the shared, mutable view of the discovery loop that traversals
// read: the current hierarchy, the index, the set of discovered positives,
// the classifier scores, and the set of already-queried rule keys.
type State struct {
	Hierarchy *hierarchy.Hierarchy
	Index     *index.Index
	// Positives is the discovered positive set P (sentence IDs).
	Positives map[int]bool
	// PosBits is the bitset mirror of Positives. Sessions maintain it
	// incrementally; when nil, it is built lazily from Positives on first
	// use (so hand-built states keep working). A caller that supplies
	// PosBits must keep it consistent with Positives itself.
	PosBits bitset.Set
	// Scores holds p_s for every sentence (indexed by sentence ID).
	Scores []float64
	// Queried marks rule keys already submitted to the oracle.
	Queried map[string]bool

	posBitsBuilt bool
	posBitsN     int
}

// coverageOf returns the coverage of a rule key, preferring the hierarchy
// node (which is guaranteed present for hierarchy-generated candidates) and
// falling back to the index.
func (st *State) coverageOf(key string) []int {
	if n := st.Hierarchy.Node(key); n != nil {
		return n.Coverage
	}
	return st.Index.Coverage(key)
}

// bitsOf returns the coverage set of a rule key (hierarchy first, then
// index), or nil when not materialized.
func (st *State) bitsOf(key string) bitset.Cover {
	if n := st.Hierarchy.Node(key); n != nil {
		if n.Bits != nil {
			return n.Bits
		}
		return nil
	}
	if st.Index != nil {
		return st.Index.Bits(key)
	}
	return nil
}

// posBits returns the bitset positive set, building (and caching) it from
// the map on first use. A lazily built set is rebuilt when the map's size
// changed since, so hand-built states that grow Positives between scoring
// calls stay consistent across both scoring paths.
func (st *State) posBits() bitset.Set {
	if st.PosBits == nil && !st.posBitsBuilt || st.posBitsBuilt && st.posBitsN != len(st.Positives) {
		st.posBitsBuilt = true
		st.posBitsN = len(st.Positives)
		st.PosBits = bitset.FromMap(st.Positives)
	}
	return st.PosBits
}

// Benefit computes Σ_{s ∈ cov \ P} p_s over a sorted posting list and a map
// positive set (the reference path; see BenefitBits for the kernel).
func Benefit(cov []int, positives map[int]bool, scores []float64) float64 {
	var b float64
	for _, id := range cov {
		if positives[id] {
			continue
		}
		if id >= 0 && id < len(scores) {
			b += scores[id]
		}
	}
	return b
}

// AvgBenefit computes the benefit per (new) instance: Benefit / |cov \ P|.
// Rules whose coverage is already fully contained in P have average benefit 0.
func AvgBenefit(cov []int, positives map[int]bool, scores []float64) float64 {
	newCount := 0
	for _, id := range cov {
		if !positives[id] {
			newCount++
		}
	}
	if newCount == 0 {
		return 0
	}
	return Benefit(cov, positives, scores) / float64(newCount)
}

// BenefitBits computes Σ_{s ∈ cov \ P} p_s with the word-wise kernel. It is
// bit-identical to Benefit on the same sets: both accumulate in ascending
// sentence-ID order.
func BenefitBits(cov, positives bitset.Set, scores []float64) float64 {
	sum, _ := bitset.AndNotSum(cov, positives, scores)
	return sum
}

// benefitNew returns (benefit, |cov \ P|) in one pass, using the bitset
// kernel when both the rule's coverage bits and the positive bits are
// available and the reference scan otherwise.
func (st *State) benefitNew(key string, cov []int) (float64, int) {
	if covBits := st.bitsOf(key); covBits != nil {
		return covBits.AndNotSum(st.posBits(), st.Scores)
	}
	var b float64
	newCov := 0
	for _, id := range cov {
		if st.Positives[id] {
			continue
		}
		newCov++
		if id >= 0 && id < len(st.Scores) {
			b += st.Scores[id]
		}
	}
	return b, newCov
}

// BenefitOf scores a rule key against the state.
func (st *State) BenefitOf(key string) float64 {
	b, _ := st.benefitNew(key, st.coverageOf(key))
	return b
}

// BenefitNewOf returns (benefit, |cov \ P|) for a rule key in one kernel
// pass.
func (st *State) BenefitNewOf(key string) (float64, int) {
	return st.benefitNew(key, st.coverageOf(key))
}

// AvgBenefitOf returns the per-instance benefit of a rule key.
func (st *State) AvgBenefitOf(key string) float64 {
	b, newCov := st.benefitNew(key, st.coverageOf(key))
	if newCov == 0 {
		return 0
	}
	return b / float64(newCov)
}

// Traversal selects the next candidate heuristic to submit to the oracle.
type Traversal interface {
	// Name identifies the strategy ("local", "universal", "hybrid").
	Name() string
	// Next returns the key of the next rule to query, or false if the
	// strategy has no candidate to propose.
	Next(st *State) (string, bool)
	// Feedback informs the strategy of the oracle's answer for a rule it
	// proposed.
	Feedback(st *State, key string, accepted bool)
	// Reseed registers an accepted seed rule (or any externally accepted
	// rule) so local strategies can explore around it.
	Reseed(st *State, key string)
}

// pickBest returns the unqueried key with the highest benefit, breaking ties
// by higher new coverage then lexicographic key for determinism. The boolean
// reports whether any eligible candidate exists. Each candidate is scored in
// a single kernel pass (benefit and new coverage together).
func pickBest(st *State, keys []string, requireAvgBenefit float64) (string, bool) {
	bestKey := ""
	bestBenefit := -1.0
	bestNew := -1
	for _, key := range keys {
		if st.Queried[key] || key == grammar.RootKey {
			continue
		}
		cov := st.coverageOf(key)
		if len(cov) == 0 {
			continue
		}
		b, newCov := st.benefitNew(key, cov)
		if requireAvgBenefit > 0 {
			avg := 0.0
			if newCov > 0 {
				avg = b / float64(newCov)
			}
			if avg <= requireAvgBenefit {
				continue
			}
		}
		if newCov == 0 {
			continue
		}
		if b > bestBenefit || (b == bestBenefit && newCov > bestNew) ||
			(b == bestBenefit && newCov == bestNew && (bestKey == "" || key < bestKey)) {
			bestKey, bestBenefit, bestNew = key, b, newCov
		}
	}
	return bestKey, bestKey != ""
}

// sortedKeys returns the keys of a string set in sorted order.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
