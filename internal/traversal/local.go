package traversal

import (
	"repro/internal/grammar"
)

// LocalSearch implements Algorithm 3: it keeps a set of local candidates
// around the rules already confirmed by the oracle. On a YES it adds the
// rule's parents (generalizations that may capture more positives); on a NO
// it adds the rule's children (specializations that may be less noisy).
// Candidate neighborhoods are taken from the hierarchy when the rule is
// materialized there and from the index otherwise, so the hierarchy can be
// expanded on the fly (the "efficient implementation" of §3.4).
type LocalSearch struct {
	candidates map[string]bool
}

// NewLocalSearch returns a LocalSearch seeded with the given rule keys
// (typically the seed heuristic r0).
func NewLocalSearch(seedKeys ...string) *LocalSearch {
	ls := &LocalSearch{candidates: make(map[string]bool)}
	for _, k := range seedKeys {
		if k != "" && k != grammar.RootKey {
			ls.candidates[k] = true
		}
	}
	return ls
}

// Name implements Traversal.
func (ls *LocalSearch) Name() string { return "local" }

// Next implements Traversal: the most beneficial unqueried local candidate.
// Two fallbacks keep the strategy from stalling: if no local candidate adds
// new coverage, the best zero-gain local candidate is proposed anyway (its
// feedback still expands the frontier, exactly as in Algorithm 3); and if the
// local candidate set is empty (e.g. the pipeline was seeded with positive
// sentences rather than a seed rule), the search bootstraps from the current
// hierarchy.
func (ls *LocalSearch) Next(st *State) (string, bool) {
	keys := sortedKeys(ls.candidates)
	if key, ok := pickBest(st, keys, 0); ok {
		return key, true
	}
	// Zero-gain fallback within the local frontier: propose a structurally
	// adjacent rule even if it adds nothing, so feedback keeps expanding the
	// neighborhood (mirrors Algorithm 3, which never filters by gain).
	for _, key := range keys {
		if !st.Queried[key] && key != grammar.RootKey && len(st.coverageOf(key)) > 0 {
			return key, true
		}
	}
	// Bootstrap fallback: the frontier is empty or exhausted (e.g. the
	// pipeline was seeded with positive sentences rather than a seed rule).
	// Pick the hierarchy rule whose coverage looks most precise against the
	// discovered positives, which is robust even when the classifier is
	// still uninformative.
	if key, ok := ls.bestByOverlap(st); ok {
		ls.candidates[key] = true
		return key, true
	}
	return "", false
}

// bestByOverlap returns the unqueried hierarchy rule that looks most precise
// against the discovered positive set: highest overlap ratio |C_r ∩ P|/|C_r|
// (a rule contained in the positive region is a promising candidate even
// before the classifier is informative), breaking ties by absolute overlap
// and then by benefit.
func (ls *LocalSearch) bestByOverlap(st *State) (string, bool) {
	best := ""
	bestRatio := -1.0
	bestOverlap := -1
	bestBenefit := -1.0
	for _, key := range st.Hierarchy.NonRootKeys() {
		if st.Queried[key] || key == grammar.RootKey {
			continue
		}
		cov := st.coverageOf(key)
		if len(cov) == 0 {
			continue
		}
		b, newCov := st.benefitNew(key, cov)
		overlap := len(cov) - newCov
		if newCov == 0 || overlap == 0 {
			continue
		}
		ratio := float64(overlap) / float64(len(cov))
		if ratio > bestRatio ||
			(ratio == bestRatio && overlap > bestOverlap) ||
			(ratio == bestRatio && overlap == bestOverlap && b > bestBenefit) {
			best, bestRatio, bestOverlap, bestBenefit = key, ratio, overlap, b
		}
	}
	return best, best != ""
}

// Feedback implements Traversal (Algorithm 3 lines 7-12).
func (ls *LocalSearch) Feedback(st *State, key string, accepted bool) {
	delete(ls.candidates, key)
	var neighborhood []string
	if accepted {
		neighborhood = ls.parentsOf(st, key)
	} else {
		neighborhood = ls.childrenOf(st, key)
	}
	for _, nk := range neighborhood {
		if nk == grammar.RootKey || st.Queried[nk] {
			continue
		}
		ls.candidates[nk] = true
	}
}

// Reseed implements Traversal: expand around an externally accepted rule.
func (ls *LocalSearch) Reseed(st *State, key string) {
	for _, nk := range ls.parentsOf(st, key) {
		if nk != grammar.RootKey && !st.Queried[nk] {
			ls.candidates[nk] = true
		}
	}
	for _, nk := range ls.childrenOf(st, key) {
		if !st.Queried[nk] {
			ls.candidates[nk] = true
		}
	}
}

// CandidateCount returns the current number of local candidates (used in
// tests and diagnostics).
func (ls *LocalSearch) CandidateCount() int { return len(ls.candidates) }

func (ls *LocalSearch) parentsOf(st *State, key string) []string {
	if n := st.Hierarchy.Node(key); n != nil && len(n.Parents) > 0 {
		return n.Parents
	}
	if ps := st.Index.Parents(key); len(ps) > 0 {
		return ps
	}
	// Fall back to grammatical parents of the heuristic itself, materializing
	// them in the index if needed is the engine's job; here we only return
	// keys that are known somewhere.
	var out []string
	if n := st.Index.Node(key); n != nil {
		for _, p := range n.Heuristic.Parents() {
			if st.Index.Node(p.Key()) != nil || st.Hierarchy.Contains(p.Key()) {
				out = append(out, p.Key())
			}
		}
	}
	return out
}

func (ls *LocalSearch) childrenOf(st *State, key string) []string {
	if n := st.Hierarchy.Node(key); n != nil && len(n.Children) > 0 {
		return n.Children
	}
	return st.Index.Children(key)
}
