package workspace

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/grammar"
	"repro/internal/journal"
	"repro/internal/tokensregex"
)

// newTestEngine builds a small deterministic engine over the synthetic
// directions corpus. Two calls with the same arguments produce equivalent
// engines — the property journal replay relies on across restarts.
func newTestEngine(t testing.TB) *core.Engine {
	t.Helper()
	c, err := datagen.ByName("directions", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := core.Config{
		Grammars:           []grammar.Grammar{tokensregex.New()},
		SketchDepth:        4,
		MaxRuleDepth:       6,
		NumCandidates:      400,
		MinRuleCoverage:    2,
		Budget:             30,
		Traversal:          "hybrid",
		Tau:                5,
		Classifier:         classifier.Config{Epochs: 8, LearningRate: 0.3, Seed: 1},
		ClassifierKind:     classifier.KindLogReg,
		Embedding:          embedding.Config{Dim: 24, Window: 3, MinCount: 2, Seed: 1},
		LazyScoring:        true,
		LazyScoreThreshold: 0.3,
		Seed:               1,
	}
	engine, err := core.New(c, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

func newTestManager(t testing.TB, journalPath string, cfg ManagerConfig) *Manager {
	t.Helper()
	eng := newTestEngine(t)
	var jw *journal.Writer
	if journalPath != "" {
		var err error
		jw, _, err = journal.Open(journalPath, journal.Options{SyncEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { jw.Close() })
	}
	return NewManager(map[string]*core.Engine{"directions": eng}, jw, cfg)
}

const seedRule = "best way to get to"

func TestWorkspaceTwoAnnotatorsDisjointSuggestions(t *testing.T) {
	m := newTestManager(t, "", ManagerConfig{})
	ws, err := m.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alice", "bob"} {
		if err := m.Attach(ws.ID(), name); err != nil {
			t.Fatal(err)
		}
	}

	seen := map[string]string{}
	accepts := 0
	for step := 0; ; step++ {
		sa, okA, err := m.Suggest(ws.ID(), "alice")
		if err != nil {
			t.Fatal(err)
		}
		sb, okB, err := m.Suggest(ws.ID(), "bob")
		if err != nil {
			t.Fatal(err)
		}
		if !okA || !okB {
			break
		}
		// The core guarantee: concurrent outstanding assignments are
		// disjoint.
		if sa.Key == sb.Key {
			t.Fatalf("step %d: both annotators were assigned %q", step, sa.Key)
		}
		for name, sug := range map[string]Suggestion{"alice": sa, "bob": sb} {
			if owner, dup := seen[sug.Key]; dup {
				t.Fatalf("rule %q suggested to %s was already suggested to %s", sug.Key, name, owner)
			}
			seen[sug.Key] = name
			accept := step%3 == 0
			if accept {
				accepts++
			}
			if _, err := m.Answer(ws.ID(), name, sug.Key, accept); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep := ws.Report()
	if rep.Questions == 0 {
		t.Fatal("no questions were answered")
	}
	if rep.Questions > rep.Budget {
		t.Fatalf("questions %d exceeded the shared budget %d", rep.Questions, rep.Budget)
	}
	if len(rep.History) != rep.Questions {
		t.Fatalf("history has %d records for %d questions", len(rep.History), rep.Questions)
	}
	// The shared hierarchy regenerates at most once per positive-set change
	// (the initial generation plus one per accept that grew P).
	growths := 0
	prev := 0
	for _, rec := range rep.History {
		if rec.PositivesAfter != prev && prev != 0 {
			growths++
		}
		prev = rec.PositivesAfter
	}
	if got := ws.HierarchyGenerations(); got > growths+1 {
		t.Errorf("hierarchy regenerated %d times for %d positive-set changes", got, growths)
	}
	if accepts > 0 && len(rep.Accepted) != accepts+1 { // +1 seed rule
		t.Errorf("accepted %d rules, report has %d", accepts+1, len(rep.Accepted))
	}
	// Per-annotator counters add up.
	total := 0
	for _, an := range rep.Annotators {
		total += an.Questions
	}
	if total != rep.Questions {
		t.Errorf("per-annotator questions sum to %d, workspace answered %d", total, rep.Questions)
	}
}

// TestWorkspaceConcurrentAnnotators hammers one workspace from several
// goroutines; with -race this exercises the lock discipline, and the
// invariants (disjoint assignments, budget never oversubscribed) must hold
// under real interleaving.
func TestWorkspaceConcurrentAnnotators(t *testing.T) {
	m := newTestManager(t, "", ManagerConfig{})
	ws, err := m.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 24})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	names := []string{"a0", "a1", "a2", "a3"}
	for _, n := range names {
		if err := m.Attach(ws.ID(), n); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(name string, accept bool) {
			defer wg.Done()
			for {
				sug, ok, err := m.Suggest(ws.ID(), name)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
				if _, err := m.Answer(ws.ID(), name, sug.Key, accept); err != nil {
					t.Error(err)
					return
				}
			}
		}(names[w], w%2 == 0)
	}
	wg.Wait()
	rep := ws.Report()
	if rep.Questions == 0 || rep.Questions > rep.Budget {
		t.Fatalf("questions = %d (budget %d)", rep.Questions, rep.Budget)
	}
	keys := map[string]bool{}
	for _, rec := range rep.History {
		if keys[rec.Key] {
			t.Fatalf("rule %q was answered twice", rec.Key)
		}
		keys[rec.Key] = true
	}
}

// driveRandom plays a random (but seeded, hence reproducible) multi-annotator
// session against a manager and returns the workspace ID.
func driveRandom(t *testing.T, m *Manager, rng *rand.Rand, steps int) string {
	t.Helper()
	ws, err := m.Create("directions", Options{SeedRules: []string{seedRule}, Budget: steps})
	if err != nil {
		t.Fatal(err)
	}
	id := ws.ID()
	names := []string{"alice", "bob", "carol"}
	for _, n := range names[:1+rng.Intn(len(names))] {
		if err := m.Attach(id, n); err != nil {
			t.Fatal(err)
		}
	}
	attached := func() []string {
		var out []string
		for _, an := range ws.Report().Annotators {
			out = append(out, an.Name)
		}
		return out
	}
	for i := 0; i < steps; i++ {
		live := attached()
		name := live[rng.Intn(len(live))]
		switch op := rng.Intn(10); {
		case op == 0 && len(live) > 1:
			if err := m.Detach(id, name); err != nil {
				t.Fatal(err)
			}
		case op == 1 && len(live) < len(names):
			for _, n := range names {
				found := false
				for _, l := range live {
					if l == n {
						found = true
					}
				}
				if !found {
					if err := m.Attach(id, n); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
		default:
			sug, ok, err := m.Suggest(id, name)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			if rng.Intn(2) == 0 { // answer now, maybe leave pending otherwise
				if _, err := m.Answer(id, name, sug.Key, rng.Intn(4) == 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return id
}

// TestReplayReconstructsByteIdenticalState is the journal property test:
// random event sequences, journaled live, replayed onto a freshly built
// engine, must reconstruct byte-identical workspace state (compared via the
// full serialized snapshot, which includes the exact score vector) and an
// identical report.
func TestReplayReconstructsByteIdenticalState(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		live := newTestManager(t, path, ManagerConfig{})
		id := driveRandom(t, live, rng, 40)
		lws, ok := live.Get(id)
		if !ok {
			t.Fatal("live workspace vanished")
		}
		liveSnap, err := json.Marshal(lws.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		liveReport := lws.Report()
		if err := live.Sync(); err != nil {
			t.Fatal(err)
		}

		events, err := journal.ReadAll(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) == 0 {
			t.Fatal("journal is empty")
		}
		restored := newTestManager(t, "", ManagerConfig{})
		stats := restored.Recover(events)
		if len(stats.Skipped) != 0 {
			t.Fatalf("seed %d: replay skipped workspaces: %v", seed, stats.Skipped)
		}
		rws, ok := restored.Get(id)
		if !ok {
			t.Fatalf("seed %d: workspace %s not recovered", seed, id)
		}
		restoredSnap, err := json.Marshal(rws.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(liveSnap, restoredSnap) {
			t.Fatalf("seed %d: replayed state differs from live state:\nlive:     %s\nreplayed: %s", seed, liveSnap, restoredSnap)
		}
		if !reflect.DeepEqual(liveReport, rws.Report()) {
			t.Fatalf("seed %d: replayed report differs", seed)
		}
	}
}

// TestSnapshotCompactionResumesDeterministically compacts mid-run, keeps
// driving, and verifies recovery from the compacted journal (snapshot +
// suffix events) still reconstructs byte-identical state.
func TestSnapshotCompactionResumesDeterministically(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	live := newTestManager(t, path, ManagerConfig{CompactEvery: -1})
	id := driveRandom(t, live, rng, 25)
	if err := live.Compact(); err != nil {
		t.Fatal(err)
	}
	// Keep going after the compaction: these events land after the snapshot.
	lws, _ := live.Get(id)
	for i := 0; i < 8; i++ {
		sug, ok, err := lws.Suggest("alice")
		if err != nil || !ok {
			break
		}
		if _, err := lws.Answer("alice", sug.Key, i%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	liveSnap, _ := json.Marshal(lws.Snapshot())
	if err := live.Sync(); err != nil {
		t.Fatal(err)
	}

	events, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	sawSnapshot := false
	for _, ev := range events {
		if ev.Type == evSnapshot {
			sawSnapshot = true
		}
	}
	if !sawSnapshot {
		t.Fatal("compacted journal has no snapshot event")
	}
	restored := newTestManager(t, "", ManagerConfig{})
	stats := restored.Recover(events)
	if len(stats.Skipped) != 0 {
		t.Fatalf("replay skipped workspaces: %v", stats.Skipped)
	}
	rws, ok := restored.Get(id)
	if !ok {
		t.Fatal("workspace not recovered from compacted journal")
	}
	restoredSnap, _ := json.Marshal(rws.Snapshot())
	if !bytes.Equal(liveSnap, restoredSnap) {
		t.Fatalf("state after compaction+resume differs:\nlive:     %s\nrestored: %s", liveSnap, restoredSnap)
	}
}

// TestReplayThousandEventsUnderASecond pins the recovery-latency acceptance
// bar: replaying a 1K-event journal must complete in under a second.
func TestReplayThousandEventsUnderASecond(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	live := newTestManager(t, path, ManagerConfig{})
	// A realistic server journal holds several workspaces; keep opening
	// fresh ones (distinct seeds, so their discovery paths differ) until
	// the log holds 1K events (a smaller log under the race detector's
	// slowdown, where the timing bar is skipped anyway).
	target := 1000
	if raceEnabled {
		target = 300
	}
	events := 0
	for wsN := int64(1); events < target; wsN++ {
		ws, err := live.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 200, Seed: wsN})
		if err != nil {
			t.Fatal(err)
		}
		id := ws.ID()
		for _, n := range []string{"alice", "bob"} {
			if err := live.Attach(id, n); err != nil {
				t.Fatal(err)
			}
		}
		events += 3 // create + 2 attaches
		for q := 0; events < target; q++ {
			name := []string{"alice", "bob"}[q%2]
			sug, ok, err := live.Suggest(id, name)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if _, err := live.Answer(id, name, sug.Key, q%8 == 0); err != nil {
				t.Fatal(err)
			}
			events += 2
		}
	}
	if err := live.Sync(); err != nil {
		t.Fatal(err)
	}
	logged, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(logged) < target {
		t.Fatalf("only generated %d events (suggestions ran dry); loosen the driver", len(logged))
	}

	restored := newTestManager(t, "", ManagerConfig{})
	start := time.Now()
	stats := restored.Recover(logged)
	elapsed := time.Since(start)
	if len(stats.Skipped) != 0 {
		t.Fatalf("replay skipped workspaces: %v", stats.Skipped)
	}
	if elapsed >= time.Second && !raceEnabled {
		t.Fatalf("replaying %d events took %v, want < 1s", len(logged), elapsed)
	}
	t.Logf("replayed %d events in %v", len(logged), elapsed)
}

// TestManagerTTLEvictionRacingAnswer races TTL eviction against concurrent
// Answer/Suggest traffic on the same workspace. Run with -race: the
// invariant is no data race and graceful ErrUnknownWorkspace afterwards —
// and the journal must still recover to the workspace-gone state.
func TestManagerTTLEvictionRacingAnswer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	m := newTestManager(t, path, ManagerConfig{TTL: 50 * time.Millisecond})
	ws, err := m.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	id := ws.ID()
	for _, n := range []string{"alice", "bob"} {
		if err := m.Attach(id, n); err != nil {
			t.Fatal(err)
		}
	}

	var (
		mu      sync.Mutex
		now     = time.Now()
		expired bool
	)
	m.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		if expired {
			return now.Add(time.Hour)
		}
		return now
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, name := range []string{"alice", "bob"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sug, ok, err := m.Suggest(id, name)
				if err != nil || !ok {
					return // workspace evicted (or dry): the race resolved
				}
				m.Answer(id, name, sug.Key, false)
			}
		}(name)
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	expired = true
	mu.Unlock()
	for i := 0; i < 100 && m.Len() > 0; i++ {
		m.Sweep()
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if m.Len() != 0 {
		t.Fatalf("workspace survived TTL eviction")
	}
	if _, err := m.Answer(id, "alice", "k", true); err == nil {
		t.Fatal("answer on an evicted workspace should fail")
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}

	// The journal may contain post-evict events from the racing answerers;
	// recovery must shrug them off and land on "workspace gone".
	events, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	restored := newTestManager(t, "", ManagerConfig{})
	restored.Recover(events)
	if restored.Len() != 0 {
		t.Fatalf("evicted workspace resurrected by replay")
	}
}

// TestJournalFailureStopsAcknowledging pins the durability contract's
// failure mode: once an append fails, the workspace refuses further state
// changes with ErrJournal instead of acknowledging work that would not
// survive a restart.
func TestJournalFailureStopsAcknowledging(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	eng := newTestEngine(t)
	jw, _, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(map[string]*core.Engine{"directions": eng}, jw, ManagerConfig{})
	ws, err := m.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	id := ws.ID()
	if err := m.Attach(id, "alice"); err != nil {
		t.Fatal(err)
	}
	sug, ok, err := m.Suggest(id, "alice")
	if err != nil || !ok {
		t.Fatalf("suggest: ok=%v err=%v", ok, err)
	}

	// Kill the journal out from under the manager: the next append fails.
	jw.Close()
	if _, err := m.Answer(id, "alice", sug.Key, true); !errors.Is(err, ErrJournal) {
		t.Fatalf("answer on a dead journal: err=%v, want ErrJournal", err)
	}
	// And the workspace now refuses new work outright.
	if _, _, err := m.Suggest(id, "alice"); !errors.Is(err, ErrJournal) {
		t.Fatalf("suggest after journal failure: err=%v, want ErrJournal", err)
	}
	if err := m.Attach(id, "bob"); !errors.Is(err, ErrJournal) {
		t.Fatalf("attach after journal failure: err=%v, want ErrJournal", err)
	}
	// Creating a new workspace fails too (its create event cannot be
	// journaled).
	if _, err := m.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 10}); !errors.Is(err, ErrJournal) {
		t.Fatalf("create on a dead journal: err=%v, want ErrJournal", err)
	}
}

func TestWorkspaceErrors(t *testing.T) {
	m := newTestManager(t, "", ManagerConfig{})
	if _, err := m.Create("nope", Options{}); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := m.Create("directions", Options{SeedRules: []string{"@@@ ???"}}); err == nil {
		t.Error("bad seed rule should fail")
	}
	if _, err := m.Create("directions", Options{}); err == nil {
		t.Error("empty seeds should fail")
	}
	ws, err := m.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	id := ws.ID()
	if _, _, err := m.Suggest(id, "ghost"); err == nil {
		t.Error("suggest for an unattached annotator should fail")
	}
	if err := m.Attach(id, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(id, "alice"); err == nil {
		t.Error("duplicate attach should fail")
	}
	if _, err := m.Answer(id, "alice", "k", true); err == nil {
		t.Error("answer without a pending suggestion should fail")
	}
	sug, ok, err := m.Suggest(id, "alice")
	if err != nil || !ok {
		t.Fatalf("suggest: ok=%v err=%v", ok, err)
	}
	if _, err := m.Answer(id, "alice", "wrong", true); err == nil {
		t.Error("mismatched answer key should fail")
	}
	// Detaching releases the pending rule back to the pool.
	if err := m.Detach(id, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(id, "bob"); err != nil {
		t.Fatal(err)
	}
	sug2, ok, err := m.Suggest(id, "bob")
	if err != nil || !ok {
		t.Fatalf("suggest after detach: ok=%v err=%v", ok, err)
	}
	if sug2.Key != sug.Key {
		t.Errorf("released rule %q was not re-assigned (got %q)", sug.Key, sug2.Key)
	}
}

// TestRestoreRefitsClassifier pins the recovery consistency fix: a workspace
// restored from a snapshot must hold a fitted classifier (Trained() true, and
// the same fitted model the live workspace had), not report restored scores
// against an untrained classifier until the next accept.
func TestRestoreRefitsClassifier(t *testing.T) {
	m := newTestManager(t, "", ManagerConfig{})
	ws, err := m.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(ws.ID(), "alice"); err != nil {
		t.Fatal(err)
	}
	// Drive until at least one accept retrained the shared classifier.
	accepts := 0
	for i := 0; i < 6 && accepts == 0; i++ {
		sug, ok, err := m.Suggest(ws.ID(), "alice")
		if err != nil || !ok {
			t.Fatalf("suggest %d: ok=%v err=%v", i, ok, err)
		}
		accept := sug.NewCoverage > 0
		if _, err := m.Answer(ws.ID(), "alice", sug.Key, accept); err != nil {
			t.Fatal(err)
		}
		if accept {
			accepts++
		}
	}
	if accepts == 0 {
		t.Fatal("scenario not reached: no accepted rule")
	}
	liveRep := ws.Report()
	if !liveRep.Classifier.Trained {
		t.Fatal("sanity: live workspace classifier is not trained")
	}

	eng := newTestEngine(t)
	rws, err := Restore(eng, ws.Snapshot(), nil)
	if err != nil {
		t.Fatal(err)
	}
	restoredRep := rws.Report()
	if !restoredRep.Classifier.Trained {
		t.Error("restored workspace classifier is not trained")
	}
	if !reflect.DeepEqual(liveRep.Classifier, restoredRep.Classifier) {
		t.Errorf("classifier metrics diverge after restore:\nlive:     %+v\nrestored: %+v",
			liveRep.Classifier, restoredRep.Classifier)
	}
	// The refit must reproduce the exact live model, not just any model:
	// future evolution (next suggestion) stays bit-identical.
	lsug, lok, lerr := ws.Suggest("alice")
	rsug, rok, rerr := rws.Suggest("alice")
	if lerr != nil || rerr != nil || lok != rok || lsug.Key != rsug.Key {
		t.Errorf("post-restore evolution diverges: live (%q,%v,%v) vs restored (%q,%v,%v)",
			lsug.Key, lok, lerr, rsug.Key, rok, rerr)
	}
}

// TestStatsDoesNotBlockOnInFlightSuggest pins the status-poll bugfix: Stats
// reads the cached counters snapshot, so a monitoring poll returns while an
// in-flight shared suggest holds ws.mu blocked on the engine's index lock
// (here: a concurrent materialization parked inside the materialize hook,
// which fires under the index write lock).
func TestStatsDoesNotBlockOnInFlightSuggest(t *testing.T) {
	eng := newTestEngine(t)
	ws, err := New(eng, "ws-stats", "directions", Options{SeedRules: []string{seedRule}, Budget: 20, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Attach("alice"); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	eng.SetMaterializeHook(func([]string) { close(entered); <-release })
	matDone := make(chan struct{})
	go func() {
		defer close(matDone)
		eng.MaterializeRule("how do i get")
	}()
	<-entered // the index write lock is now held and parked

	sugDone := make(chan struct{})
	go func() {
		defer close(sugDone)
		ws.Suggest("alice")
	}()
	// Let the suggest take ws.mu and block inside WithIndexRead.
	time.Sleep(300 * time.Millisecond)
	select {
	case <-sugDone:
		t.Fatal("suggest completed while the index write lock was held")
	default:
	}

	statsDone := make(chan struct{})
	var questions, positives int
	go func() {
		defer close(statsDone)
		questions, positives, _ = ws.Stats()
	}()
	select {
	case <-statsDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Stats blocked behind an in-flight suggest")
	}
	if questions != 0 || positives == 0 {
		t.Errorf("Stats = (%d questions, %d positives), want (0, >0)", questions, positives)
	}

	close(release)
	<-matDone
	<-sugDone
}
