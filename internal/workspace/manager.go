package workspace

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
)

// Recovery telemetry: Recover runs once per process start, so plain gauges
// capture what the last (only) recovery did.
var (
	recoveryDuration = obs.Default().Gauge("darwin_workspace_recovery_duration_seconds",
		"Wall-clock duration of the last journal replay at startup.")
	recoveryEvents = obs.Default().Gauge("darwin_workspace_recovery_events",
		"Journal events replayed by the last recovery.")
	recoverySkipped = obs.Default().Gauge("darwin_workspace_recovery_skipped_workspaces",
		"Workspaces the last recovery could not reconstruct and skipped.")
)

// Default manager limits.
const (
	DefaultTTL           = 2 * time.Hour
	DefaultMaxWorkspaces = 256
	DefaultCompactEvery  = 4096
)

// ManagerConfig tunes the workspace manager.
type ManagerConfig struct {
	// TTL evicts workspaces idle longer than this (default 2h).
	TTL time.Duration
	// MaxWorkspaces bounds the number of live workspaces (default 256).
	MaxWorkspaces int
	// CompactEvery triggers snapshot+truncate compaction of the journal
	// after this many appends (default 4096; negative disables).
	CompactEvery int
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	if c.MaxWorkspaces <= 0 {
		c.MaxWorkspaces = DefaultMaxWorkspaces
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = DefaultCompactEvery
	}
	return c
}

type entry struct {
	ws       *Workspace
	lastUsed time.Time
}

// Manager owns the live workspaces of a server, their journal, and the
// recovery path. All state-changing operations go through Manager methods,
// which hold the appender gate so compaction can exclude them; read-only
// workspace methods (Report, PositivesMap, HierarchyGenerations) may be
// called directly on the *Workspace returned by Get.
type Manager struct {
	cfg     ManagerConfig
	engines map[string]*core.Engine
	jw      *journal.Writer

	// gate is the appender gate: every journaling operation runs under
	// RLock for its duration, and Compact takes Lock so the snapshot it
	// writes captures every acknowledged event.
	gate sync.RWMutex

	mu    sync.Mutex
	items map[string]*entry
	now   func() time.Time

	// matMu serializes materialize-hook appends (which run under the
	// engines' index write locks, outside the gate) with compaction, and
	// guards the record of journaled materializations that compaction must
	// preserve.
	matMu    sync.Mutex
	matSpecs map[string][]string
	matSeen  map[string]map[string]bool

	recovering atomic.Bool
	compacting atomic.Bool
}

// NewManager creates a manager over the given engines (dataset name →
// engine). jw may be nil for a volatile (journal-less) manager. The manager
// registers itself as each engine's materialize hook, so every seed-rule
// materialization — including ones from the plain session API — is
// journaled in index-lock order.
func NewManager(engines map[string]*core.Engine, jw *journal.Writer, cfg ManagerConfig) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		engines:  engines,
		jw:       jw,
		items:    make(map[string]*entry),
		now:      time.Now,
		matSpecs: make(map[string][]string),
		matSeen:  make(map[string]map[string]bool),
	}
	if jw != nil {
		for name, eng := range engines {
			name := name
			eng.SetMaterializeHook(func(specs []string) { m.onMaterialize(name, specs) })
		}
	}
	return m
}

// onMaterialize journals fresh seed-rule materializations. It is called
// under the engine's index write lock; see core.SetMaterializeHook.
func (m *Manager) onMaterialize(dataset string, specs []string) {
	if m.jw == nil || m.recovering.Load() {
		return
	}
	m.matMu.Lock()
	defer m.matMu.Unlock()
	fresh := m.recordMaterializedLocked(dataset, specs)
	if len(fresh) > 0 {
		m.jw.Append(evMaterialize, "", dataset, materializeData{Specs: fresh})
	}
}

// recordMaterializedLocked dedups specs against everything already journaled
// for the dataset and records the fresh ones. Callers hold matMu.
func (m *Manager) recordMaterializedLocked(dataset string, specs []string) []string {
	seen := m.matSeen[dataset]
	if seen == nil {
		seen = make(map[string]bool)
		m.matSeen[dataset] = seen
	}
	var fresh []string
	for _, spec := range specs {
		if spec == "" || seen[spec] {
			continue
		}
		seen[spec] = true
		m.matSpecs[dataset] = append(m.matSpecs[dataset], spec)
		fresh = append(fresh, spec)
	}
	return fresh
}

// logFor returns the workspace's journaling callback. Appends are suppressed
// during recovery (replay must not re-journal the events it is reading); an
// append failure propagates to the workspace, which stops accepting new
// state changes rather than acknowledge undurable work.
func (m *Manager) logFor(id string) LogFunc {
	if m.jw == nil {
		return nil
	}
	return func(typ string, data any) error {
		if m.recovering.Load() {
			return nil
		}
		_, err := m.jw.Append(typ, id, "", data)
		if err == nil && m.cfg.CompactEvery > 0 && m.jw.SinceRewrite() >= m.cfg.CompactEvery {
			go m.Compact()
		}
		return err
	}
}

func newWorkspaceID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("workspace: generate id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Create builds a new workspace on the named dataset's engine, resolving
// budget and seed against the engine defaults, and journals its creation.
func (m *Manager) Create(dataset string, opts Options) (*Workspace, error) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	eng, ok := m.engines[dataset]
	if !ok {
		return nil, fmt.Errorf("workspace: unknown dataset %q", dataset)
	}
	if opts.Budget <= 0 {
		opts.Budget = eng.DefaultBudget()
	}
	if opts.Seed == 0 {
		opts.Seed = eng.DefaultSeed()
	}
	m.mu.Lock()
	m.sweepLocked(m.now())
	full := len(m.items) >= m.cfg.MaxWorkspaces
	m.mu.Unlock()
	if full {
		return nil, fmt.Errorf("workspace: limit reached (%d live workspaces)", m.cfg.MaxWorkspaces)
	}
	id, err := newWorkspaceID()
	if err != nil {
		return nil, err
	}
	ws, err := New(eng, id, dataset, opts, m.logFor(id))
	if err != nil {
		return nil, err
	}
	// The create event follows the materialize events New just fired, the
	// same order recovery applies them in. A failed append fails the
	// create: an unjournaled workspace would silently lose all its work at
	// the next restart.
	if m.jw != nil {
		if _, err := m.jw.Append(evCreate, id, "", createData{Dataset: dataset, CorpusLen: eng.Corpus().Len(), Options: opts}); err != nil {
			return nil, fmt.Errorf("workspace: %w: %v", ErrJournal, err)
		}
	}
	m.mu.Lock()
	m.items[id] = &entry{ws: ws, lastUsed: m.now()}
	m.mu.Unlock()
	return ws, nil
}

// Engine returns the engine serving the named dataset (the serving layer
// uses it to resolve sample texts and exports for workspace-backed labelers).
func (m *Manager) Engine(dataset string) (*core.Engine, bool) {
	eng, ok := m.engines[dataset]
	return eng, ok
}

// Get returns the live workspace with the given ID, refreshing its idle
// timer. Expired workspaces are evicted and treated as absent.
func (m *Manager) Get(id string) (*Workspace, bool) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	return m.get(id)
}

func (m *Manager) get(id string) (*Workspace, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	en, ok := m.items[id]
	if !ok {
		return nil, false
	}
	now := m.now()
	if now.Sub(en.lastUsed) > m.cfg.TTL {
		m.evictLocked(id, "ttl")
		return nil, false
	}
	en.lastUsed = now
	return en.ws, true
}

// Peek returns the live workspace with the given ID without refreshing its
// idle timer: read-only listings and status polls must not keep abandoned
// workspaces alive.
func (m *Manager) Peek(id string) (*Workspace, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	en, ok := m.items[id]
	if !ok || m.now().Sub(en.lastUsed) > m.cfg.TTL {
		return nil, false
	}
	return en.ws, true
}

// Attach adds an annotator to a workspace.
func (m *Manager) Attach(id, name string) error {
	m.gate.RLock()
	defer m.gate.RUnlock()
	ws, ok := m.get(id)
	if !ok {
		return errUnknown(id)
	}
	return ws.Attach(name)
}

// Detach removes an annotator from a workspace.
func (m *Manager) Detach(id, name string) error {
	m.gate.RLock()
	defer m.gate.RUnlock()
	ws, ok := m.get(id)
	if !ok {
		return errUnknown(id)
	}
	return ws.Detach(name)
}

// Suggest returns (or assigns) the annotator's next suggestion.
func (m *Manager) Suggest(id, name string) (Suggestion, bool, error) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	ws, ok := m.get(id)
	if !ok {
		return Suggestion{}, false, errUnknown(id)
	}
	return ws.Suggest(name)
}

// Answer records an annotator's verdict.
func (m *Manager) Answer(id, name, key string, accept bool) (Record, error) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	ws, ok := m.get(id)
	if !ok {
		return Record{}, errUnknown(id)
	}
	return ws.Answer(name, key, accept)
}

// Evict drops a workspace (journaling the eviction so replay drops it too)
// and reports whether it existed.
func (m *Manager) Evict(id, reason string) bool {
	m.gate.RLock()
	defer m.gate.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.items[id]; !ok {
		return false
	}
	m.evictLocked(id, reason)
	return true
}

// evictLocked removes a workspace and journals the eviction. Callers hold
// m.mu (and the gate read lock).
func (m *Manager) evictLocked(id, reason string) {
	delete(m.items, id)
	if m.jw != nil && !m.recovering.Load() {
		m.jw.Append(evEvict, id, "", evictData{Reason: reason})
	}
}

// Sweep evicts all workspaces idle longer than the TTL and returns how many
// were removed.
func (m *Manager) Sweep() int {
	m.gate.RLock()
	defer m.gate.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked(m.now())
}

func (m *Manager) sweepLocked(now time.Time) int {
	n := 0
	for id, en := range m.items {
		if now.Sub(en.lastUsed) > m.cfg.TTL {
			m.evictLocked(id, "ttl")
			n++
		}
	}
	return n
}

// Len returns the number of live workspaces.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// IDs returns the live workspace IDs, sorted.
func (m *Manager) IDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.items))
	for id := range m.items {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Janitor sweeps expired workspaces every interval until stop is closed.
func (m *Manager) Janitor(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.Sweep()
		case <-stop:
			return
		}
	}
}

// Compact rewrites the journal as (materialize events, one snapshot per
// live workspace), truncating the event history. It excludes every
// journaling operation via the appender gate, so the snapshots capture all
// acknowledged events; engine-level materialize appends (which run outside
// the gate, under index locks) are excluded via matMu.
func (m *Manager) Compact() error {
	if m.jw == nil {
		return nil
	}
	if !m.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer m.compacting.Store(false)
	m.gate.Lock()
	defer m.gate.Unlock()
	m.matMu.Lock()
	defer m.matMu.Unlock()

	var events []journal.Event
	datasets := make([]string, 0, len(m.matSpecs))
	for d := range m.matSpecs {
		datasets = append(datasets, d)
	}
	sort.Strings(datasets)
	for _, d := range datasets {
		data, err := json.Marshal(materializeData{Specs: m.matSpecs[d]})
		if err != nil {
			return fmt.Errorf("workspace: compact: %w", err)
		}
		events = append(events, journal.Event{Type: evMaterialize, Dataset: d, Data: data})
	}
	m.mu.Lock()
	ids := make([]string, 0, len(m.items))
	for id := range m.items {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		data, err := json.Marshal(m.items[id].ws.Snapshot())
		if err != nil {
			m.mu.Unlock()
			return fmt.Errorf("workspace: compact snapshot %s: %w", id, err)
		}
		events = append(events, journal.Event{Type: evSnapshot, WS: id, Data: data})
	}
	m.mu.Unlock()
	return m.jw.Rewrite(events)
}

// Sync forces the journal to disk (no-op without a journal).
func (m *Manager) Sync() error {
	if m.jw == nil {
		return nil
	}
	return m.jw.Sync()
}

// Close flushes and closes the journal (no-op without a journal). Call it
// on graceful shutdown after the HTTP server has drained.
func (m *Manager) Close() error {
	if m.jw == nil {
		return nil
	}
	return m.jw.Close()
}

func errUnknown(id string) error {
	return fmt.Errorf("workspace: %q: %w", id, ErrUnknownWorkspace)
}

// RecoveryStats reports what Recover reconstructed.
type RecoveryStats struct {
	// Events is the number of journal events read.
	Events int
	// Workspaces is the number of live workspaces after recovery.
	Workspaces int
	// Skipped maps workspace IDs that could not be recovered to the reason.
	Skipped map[string]string
}

// Recover replays a journal's events through the same apply methods that
// served them live, reconstructing every live workspace byte-identically.
// It must be called once, before the manager serves traffic. Workspaces
// whose replay fails (missing dataset, corpus mismatch, or a suggest that
// no longer recomputes the journaled assignment) are skipped and reported
// in the stats; the rest recover normally.
func (m *Manager) Recover(events []journal.Event) RecoveryStats {
	m.recovering.Store(true)
	defer m.recovering.Store(false)
	start := time.Now()
	stats := RecoveryStats{Skipped: make(map[string]string)}
	defer func() {
		recoveryDuration.Set(time.Since(start).Seconds())
		recoveryEvents.Set(float64(stats.Events))
		recoverySkipped.Set(float64(len(stats.Skipped)))
	}()
	broken := stats.Skipped
	fail := func(id, format string, args ...any) {
		broken[id] = fmt.Sprintf(format, args...)
		m.mu.Lock()
		delete(m.items, id)
		m.mu.Unlock()
	}
	decode := func(raw json.RawMessage, v any) bool {
		return json.Unmarshal(raw, v) == nil
	}
	for _, ev := range events {
		stats.Events++
		switch ev.Type {
		case evMaterialize:
			var d materializeData
			eng, ok := m.engines[ev.Dataset]
			if !ok || !decode(ev.Data, &d) {
				continue
			}
			for _, spec := range d.Specs {
				eng.MaterializeRule(spec)
			}
			m.matMu.Lock()
			m.recordMaterializedLocked(ev.Dataset, d.Specs)
			m.matMu.Unlock()
		case evCreate:
			if _, bad := broken[ev.WS]; bad {
				continue
			}
			var d createData
			if !decode(ev.Data, &d) {
				fail(ev.WS, "corrupt create event")
				continue
			}
			eng, ok := m.engines[d.Dataset]
			if !ok {
				fail(ev.WS, "dataset %q is not served", d.Dataset)
				continue
			}
			if eng.Corpus().Len() != d.CorpusLen {
				fail(ev.WS, "corpus has %d sentences, workspace was created over %d", eng.Corpus().Len(), d.CorpusLen)
				continue
			}
			ws, err := New(eng, ev.WS, d.Dataset, d.Options, m.logFor(ev.WS))
			if err != nil {
				fail(ev.WS, "replay create: %v", err)
				continue
			}
			m.mu.Lock()
			m.items[ev.WS] = &entry{ws: ws, lastUsed: m.now()}
			m.mu.Unlock()
		case evSnapshot:
			var snap Snapshot
			if !decode(ev.Data, &snap) {
				fail(ev.WS, "corrupt snapshot event")
				continue
			}
			eng, ok := m.engines[snap.Dataset]
			if !ok {
				fail(ev.WS, "dataset %q is not served", snap.Dataset)
				continue
			}
			ws, err := Restore(eng, &snap, m.logFor(ev.WS))
			if err != nil {
				fail(ev.WS, "restore snapshot: %v", err)
				continue
			}
			delete(broken, ev.WS) // the snapshot is authoritative
			m.mu.Lock()
			m.items[ev.WS] = &entry{ws: ws, lastUsed: m.now()}
			m.mu.Unlock()
		case evAttach:
			var d attachData
			if ws, ok := m.replayTarget(ev.WS, ev.Data, &d, broken); ok {
				if err := ws.Attach(d.Annotator); err != nil {
					fail(ev.WS, "replay attach: %v", err)
				}
			}
		case evDetach:
			var d detachData
			if ws, ok := m.replayTarget(ev.WS, ev.Data, &d, broken); ok {
				if err := ws.Detach(d.Annotator); err != nil {
					fail(ev.WS, "replay detach: %v", err)
				}
			}
		case evSuggest:
			var d suggestData
			if ws, ok := m.replayTarget(ev.WS, ev.Data, &d, broken); ok {
				sug, ok, err := ws.Suggest(d.Annotator)
				switch {
				case err != nil:
					fail(ev.WS, "replay suggest: %v", err)
				case !ok:
					fail(ev.WS, "replay suggest for %q produced no assignment (journaled %q)", d.Annotator, d.Key)
				case sug.Key != d.Key:
					fail(ev.WS, "replay diverged: suggest recomputed %q, journal says %q (engine rebuilt differently?)", sug.Key, d.Key)
				}
			}
		case evAnswer:
			var d answerData
			if ws, ok := m.replayTarget(ev.WS, ev.Data, &d, broken); ok {
				if _, err := ws.Answer(d.Annotator, d.Key, d.Accept); err != nil {
					fail(ev.WS, "replay answer: %v", err)
				}
			}
		case evEvict:
			m.mu.Lock()
			delete(m.items, ev.WS)
			m.mu.Unlock()
			delete(broken, ev.WS)
		}
	}
	m.mu.Lock()
	stats.Workspaces = len(m.items)
	m.mu.Unlock()
	return stats
}

// replayTarget resolves the workspace an event applies to during recovery.
// Events for unknown workspaces are skipped silently: they are the benign
// trace of an operation that raced a TTL eviction (the live answer landed
// after the evict event; the final state — workspace gone — is identical).
func (m *Manager) replayTarget(id string, raw json.RawMessage, v any, broken map[string]string) (*Workspace, bool) {
	if _, bad := broken[id]; bad {
		return nil, false
	}
	if json.Unmarshal(raw, v) != nil {
		return nil, false
	}
	m.mu.Lock()
	en, ok := m.items[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return en.ws, true
}
