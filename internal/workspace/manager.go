package workspace

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/journal"
	"repro/internal/obs"
)

// Recovery telemetry: Recover runs once per process start, so plain gauges
// capture what the last (only) recovery did.
var (
	recoveryDuration = obs.Default().Gauge("darwin_workspace_recovery_duration_seconds",
		"Wall-clock duration of the last journal replay at startup.")
	recoveryEvents = obs.Default().Gauge("darwin_workspace_recovery_events",
		"Journal events replayed by the last recovery.")
	recoverySkipped = obs.Default().Gauge("darwin_workspace_recovery_skipped_workspaces",
		"Workspaces the last recovery could not reconstruct and skipped.")
)

// Default manager limits.
const (
	DefaultTTL           = 2 * time.Hour
	DefaultMaxWorkspaces = 256
	DefaultCompactEvery  = 4096
)

// ManagerConfig tunes the workspace manager.
type ManagerConfig struct {
	// TTL evicts workspaces idle longer than this (default 2h).
	TTL time.Duration
	// MaxWorkspaces bounds the number of live workspaces (default 256).
	MaxWorkspaces int
	// CompactEvery triggers snapshot+truncate compaction of the journal
	// after this many appends (default 4096; negative disables).
	CompactEvery int
	// AttachmentTTL detaches individual annotators idle longer than this
	// during sweeps, releasing their pending suggestion back to the shared
	// pool well before the whole workspace expires (0 disables). The detach
	// is journaled like a client-issued one, so it replays — and replicates —
	// identically.
	AttachmentTTL time.Duration
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	if c.MaxWorkspaces <= 0 {
		c.MaxWorkspaces = DefaultMaxWorkspaces
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = DefaultCompactEvery
	}
	return c
}

type entry struct {
	ws       *Workspace
	lastUsed time.Time
}

// Manager owns the live workspaces of a server, their journal, and the
// recovery path. All state-changing operations go through Manager methods,
// which hold the appender gate so compaction can exclude them; read-only
// workspace methods (Report, PositivesMap, HierarchyGenerations) may be
// called directly on the *Workspace returned by Get.
type Manager struct {
	cfg     ManagerConfig
	engines map[string]*core.Engine
	jw      *journal.Writer

	// gate is the appender gate: every journaling operation runs under
	// RLock for its duration, and Compact takes Lock so the snapshot it
	// writes captures every acknowledged event.
	//darwin:lockrank gate
	gate sync.RWMutex

	mu    sync.Mutex //darwin:lockrank manager
	items map[string]*entry
	now   func() time.Time

	// matMu serializes materialize-hook appends (which run under the
	// engines' index write locks, outside the gate) with compaction, and
	// guards the record of journaled materializations that compaction must
	// preserve.
	//darwin:lockrank mat
	matMu    sync.Mutex
	matSpecs map[string][]string
	matSeen  map[string]map[string]bool

	// fenceMu guards fences: the per-dataset minimum replication epoch this
	// shard accepts. Fences are journaled (and re-emitted by compaction) so
	// zombie rejection survives restarts.
	fenceMu sync.Mutex
	fences  map[string]uint64

	// barrier, when set, is invoked after every acknowledged state change
	// with the workspace's dataset; synchronous replication installs the
	// wait-for-follower-ack here. It runs outside all manager locks.
	barrier atomic.Pointer[func(dataset string)]

	recovering atomic.Bool
	compacting atomic.Bool
}

// NewManager creates a manager over the given engines (dataset name →
// engine). jw may be nil for a volatile (journal-less) manager. The manager
// registers itself as each engine's materialize hook, so every seed-rule
// materialization — including ones from the plain session API — is
// journaled in index-lock order.
func NewManager(engines map[string]*core.Engine, jw *journal.Writer, cfg ManagerConfig) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		engines:  engines,
		jw:       jw,
		items:    make(map[string]*entry),
		now:      time.Now,
		matSpecs: make(map[string][]string),
		matSeen:  make(map[string]map[string]bool),
		fences:   make(map[string]uint64),
	}
	if jw != nil {
		for name, eng := range engines {
			name := name
			eng.SetMaterializeHook(func(specs []string) { m.onMaterialize(name, specs) })
		}
	}
	return m
}

// onMaterialize journals fresh seed-rule materializations. It is called
// under the engine's index write lock; see core.SetMaterializeHook.
func (m *Manager) onMaterialize(dataset string, specs []string) {
	if m.jw == nil || m.recovering.Load() {
		return
	}
	m.matMu.Lock()
	defer m.matMu.Unlock()
	fresh := m.recordMaterializedLocked(dataset, specs)
	if len(fresh) > 0 {
		m.jw.Append(evMaterialize, "", dataset, materializeData{Specs: fresh})
	}
}

// recordMaterializedLocked dedups specs against everything already journaled
// for the dataset and records the fresh ones. Callers hold matMu.
func (m *Manager) recordMaterializedLocked(dataset string, specs []string) []string {
	seen := m.matSeen[dataset]
	if seen == nil {
		seen = make(map[string]bool)
		m.matSeen[dataset] = seen
	}
	var fresh []string
	for _, spec := range specs {
		if spec == "" || seen[spec] {
			continue
		}
		seen[spec] = true
		m.matSpecs[dataset] = append(m.matSpecs[dataset], spec)
		fresh = append(fresh, spec)
	}
	return fresh
}

// logFor returns the workspace's journaling callback. Appends are suppressed
// during recovery (replay must not re-journal the events it is reading); an
// append failure propagates to the workspace, which stops accepting new
// state changes rather than acknowledge undurable work.
func (m *Manager) logFor(id string) LogFunc {
	if m.jw == nil {
		return nil
	}
	return func(typ string, data any) error {
		if m.recovering.Load() {
			return nil
		}
		_, err := m.jw.Append(typ, id, "", data)
		if err == nil && m.cfg.CompactEvery > 0 && m.jw.SinceRewrite() >= m.cfg.CompactEvery {
			go m.Compact()
		}
		return err
	}
}

func newWorkspaceID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("workspace: generate id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Create builds a new workspace on the named dataset's engine, resolving
// budget and seed against the engine defaults, and journals its creation.
func (m *Manager) Create(dataset string, opts Options) (*Workspace, error) {
	ws, err := m.create(dataset, opts)
	if err == nil {
		m.awaitReplication(dataset)
	}
	return ws, err
}

func (m *Manager) create(dataset string, opts Options) (*Workspace, error) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	eng, ok := m.engines[dataset]
	if !ok {
		return nil, fmt.Errorf("workspace: unknown dataset %q", dataset)
	}
	if opts.Budget <= 0 {
		opts.Budget = eng.DefaultBudget()
	}
	if opts.Seed == 0 {
		opts.Seed = eng.DefaultSeed()
	}
	m.mu.Lock()
	m.sweepLocked(m.now())
	full := len(m.items) >= m.cfg.MaxWorkspaces
	m.mu.Unlock()
	if full {
		return nil, fmt.Errorf("workspace: limit reached (%d live workspaces)", m.cfg.MaxWorkspaces)
	}
	id, err := newWorkspaceID()
	if err != nil {
		return nil, err
	}
	// logFor only constructs the LogFunc closure here; its gate acquisition
	// happens when the workspace later invokes it, on a fresh stack.
	//darwin:lockorder-exempt closure construction only; the gate RLock inside runs on the caller stack of the LogFunc, not here
	ws, err := New(eng, id, dataset, opts, m.logFor(id))
	if err != nil {
		return nil, err
	}
	// The create event follows the materialize events New just fired, the
	// same order recovery applies them in. A failed append fails the
	// create: an unjournaled workspace would silently lose all its work at
	// the next restart.
	if m.jw != nil {
		if _, err := m.jw.Append(evCreate, id, "", createData{Dataset: dataset, CorpusLen: eng.Corpus().Len(), Options: opts}); err != nil {
			return nil, fmt.Errorf("workspace: %w: %v", ErrJournal, err)
		}
	}
	m.mu.Lock()
	m.items[id] = &entry{ws: ws, lastUsed: m.now()}
	m.mu.Unlock()
	return ws, nil
}

// Ingest appends a batch of sentences to the named dataset's live corpus,
// incrementally extending its index, and journals the growth durably (the
// event is fsynced before Ingest returns — an acknowledged batch survives a
// crash). It returns the sentence-ID range [from, to) the batch occupies.
//
// Unlike every other manager operation, Ingest holds the appender gate
// exclusively: create events pin the corpus length they were journaled at,
// so corpus growth must not interleave with other journaling operations —
// the journal order has to equal the apply order. Engine-level materialize
// appends stay safe without the gate because ingest and materialization
// commute (the index re-probes ad-hoc rules against ingested sentences).
func (m *Manager) Ingest(dataset string, batch []ingest.Sentence) (from, to int, err error) {
	from, to, err = m.ingest(dataset, batch)
	if err == nil {
		m.awaitReplication(dataset)
	}
	return from, to, err
}

func (m *Manager) ingest(dataset string, batch []ingest.Sentence) (int, int, error) {
	m.gate.Lock()
	defer m.gate.Unlock()
	eng, ok := m.engines[dataset]
	if !ok {
		return 0, 0, fmt.Errorf("workspace: unknown dataset %q", dataset)
	}
	from, to, err := eng.Ingest(batch)
	if err != nil {
		return from, from, err
	}
	if m.jw != nil && !m.recovering.Load() {
		if _, err := m.jw.Append(evIngest, "", dataset, ingestData{From: from, Sentences: batch}); err != nil {
			return from, to, fmt.Errorf("workspace: %w: %v", ErrJournal, err)
		}
		if err := m.jw.Sync(); err != nil {
			return from, to, fmt.Errorf("workspace: %w: %v", ErrJournal, err)
		}
	}
	return from, to, nil
}

// awaitReplication runs the installed replication barrier, if any. Callers
// must not hold the appender gate: a synchronous-replication wait here must
// not stall compaction or other appenders.
func (m *Manager) awaitReplication(dataset string) {
	if b := m.barrier.Load(); b != nil {
		(*b)(dataset)
	}
}

// SetBarrier installs (or clears, with nil) the post-acknowledge replication
// barrier. It is called once at startup, before the manager serves traffic.
func (m *Manager) SetBarrier(f func(dataset string)) {
	if f == nil {
		m.barrier.Store(nil)
		return
	}
	m.barrier.Store(&f)
}

// Engine returns the engine serving the named dataset (the serving layer
// uses it to resolve sample texts and exports for workspace-backed labelers).
func (m *Manager) Engine(dataset string) (*core.Engine, bool) {
	eng, ok := m.engines[dataset]
	return eng, ok
}

// Get returns the live workspace with the given ID, refreshing its idle
// timer. Expired workspaces are evicted and treated as absent.
func (m *Manager) Get(id string) (*Workspace, bool) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	return m.get(id)
}

func (m *Manager) get(id string) (*Workspace, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	en, ok := m.items[id]
	if !ok {
		return nil, false
	}
	now := m.now()
	if now.Sub(en.lastUsed) > m.cfg.TTL {
		m.evictLocked(id, "ttl")
		return nil, false
	}
	en.lastUsed = now
	return en.ws, true
}

// Peek returns the live workspace with the given ID without refreshing its
// idle timer: read-only listings and status polls must not keep abandoned
// workspaces alive.
func (m *Manager) Peek(id string) (*Workspace, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	en, ok := m.items[id]
	if !ok || m.now().Sub(en.lastUsed) > m.cfg.TTL {
		return nil, false
	}
	return en.ws, true
}

// Attach adds an annotator to a workspace.
func (m *Manager) Attach(id, name string) error {
	m.gate.RLock()
	ws, ok := m.get(id)
	if !ok {
		m.gate.RUnlock()
		return errUnknown(id)
	}
	err := ws.Attach(name)
	m.gate.RUnlock()
	if err == nil {
		m.awaitReplication(ws.Dataset())
	}
	return err
}

// Detach removes an annotator from a workspace.
func (m *Manager) Detach(id, name string) error {
	m.gate.RLock()
	ws, ok := m.get(id)
	if !ok {
		m.gate.RUnlock()
		return errUnknown(id)
	}
	err := ws.Detach(name)
	m.gate.RUnlock()
	if err == nil {
		m.awaitReplication(ws.Dataset())
	}
	return err
}

// Suggest returns (or assigns) the annotator's next suggestion.
func (m *Manager) Suggest(id, name string) (Suggestion, bool, error) {
	m.gate.RLock()
	ws, ok := m.get(id)
	if !ok {
		m.gate.RUnlock()
		return Suggestion{}, false, errUnknown(id)
	}
	sug, assigned, err := ws.Suggest(name)
	m.gate.RUnlock()
	if err == nil && assigned {
		m.awaitReplication(ws.Dataset())
	}
	return sug, assigned, err
}

// Answer records an annotator's verdict. With a replication barrier
// installed, Answer does not return until the applied event is acknowledged
// by the follower (or the sync timeout degrades the wait) — this is what
// makes "acknowledged answer" mean "survives primary loss".
func (m *Manager) Answer(id, name, key string, accept bool) (Record, error) {
	m.gate.RLock()
	ws, ok := m.get(id)
	if !ok {
		m.gate.RUnlock()
		return Record{}, errUnknown(id)
	}
	rec, err := ws.Answer(name, key, accept)
	m.gate.RUnlock()
	if err == nil {
		m.awaitReplication(ws.Dataset())
	}
	return rec, err
}

// Evict drops a workspace, journaling the eviction (so replay drops it too)
// and syncing the journal before returning. It reports whether the workspace
// existed; a non-nil error means the eviction is applied in memory but NOT
// durably journaled — callers must not acknowledge the delete as permanent
// (a crash before the next sync would resurrect the workspace on replay).
//
//darwin:journals
func (m *Manager) Evict(id, reason string) (bool, error) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	m.mu.Lock()
	if _, ok := m.items[id]; !ok {
		m.mu.Unlock()
		return false, nil
	}
	err := m.evictLocked(id, reason)
	m.mu.Unlock()
	if err == nil && m.jw != nil && !m.recovering.Load() {
		if serr := m.jw.Sync(); serr != nil {
			err = fmt.Errorf("workspace: %w: %v", ErrJournal, serr)
		}
	}
	return true, err
}

// evictLocked removes a workspace and journals the eviction, returning the
// append error. The in-memory entry is dropped regardless: the Writer's
// error is sticky, so best-effort callers (TTL sweeps) may ignore the
// return — the next journaling operation surfaces it. Callers hold m.mu
// (and the gate read lock).
func (m *Manager) evictLocked(id, reason string) error {
	delete(m.items, id)
	if m.jw != nil && !m.recovering.Load() {
		if _, err := m.jw.Append(evEvict, id, "", evictData{Reason: reason}); err != nil {
			return fmt.Errorf("workspace: %w: %v", ErrJournal, err)
		}
	}
	return nil
}

// Sweep evicts all workspaces idle longer than the TTL and returns how many
// were removed.
func (m *Manager) Sweep() int {
	m.gate.RLock()
	defer m.gate.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked(m.now())
}

func (m *Manager) sweepLocked(now time.Time) int {
	n := 0
	for id, en := range m.items {
		if now.Sub(en.lastUsed) > m.cfg.TTL {
			m.evictLocked(id, "ttl")
			n++
			continue
		}
		if m.cfg.AttachmentTTL > 0 && !m.recovering.Load() {
			// Reclaim individual abandoned attachments long before the
			// workspace itself expires; each detach journals (and
			// replicates) like a client-issued one.
			en.ws.DetachIdle(now.Add(-m.cfg.AttachmentTTL))
		}
	}
	return n
}

// Len returns the number of live workspaces.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// IDs returns the live workspace IDs, sorted.
func (m *Manager) IDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.items))
	for id := range m.items {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Janitor sweeps expired workspaces every interval until stop is closed.
func (m *Manager) Janitor(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.Sweep()
		case <-stop:
			return
		}
	}
}

// Compact rewrites the journal as (materialize events, one snapshot per
// live workspace), truncating the event history. It excludes every
// journaling operation via the appender gate, so the snapshots capture all
// acknowledged events; engine-level materialize appends (which run outside
// the gate, under index locks) are excluded via matMu.
func (m *Manager) Compact() error {
	if m.jw == nil {
		return nil
	}
	if !m.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer m.compacting.Store(false)
	m.gate.Lock()
	defer m.gate.Unlock()
	m.matMu.Lock()
	defer m.matMu.Unlock()

	var events []journal.Event
	// Ingested corpus growth is re-emitted first, as one consolidated batch
	// per dataset: everything after it — materializations whose coverage
	// includes ingested sentences, snapshots taken over the grown corpus —
	// replays against the corpus length the tail reconstructs.
	ingested := make([]string, 0, len(m.engines))
	for d := range m.engines {
		ingested = append(ingested, d)
	}
	sort.Strings(ingested)
	for _, d := range ingested {
		// index (30) is acquired under matMu (20) — inverted. Safe only
		// because the exclusive appender gate above excludes every
		// ixMu-holder that could be waiting on matMu (ingest and the
		// materialize hook both run gate-protected).
		//darwin:lockorder-exempt exclusive appender gate excludes all ixMu->matMu nestings for the duration of Compact
		from, tail := m.engines[d].IngestedTail()
		if len(tail) == 0 {
			continue
		}
		data, err := json.Marshal(ingestData{From: from, Sentences: tail})
		if err != nil {
			return fmt.Errorf("workspace: compact ingest: %w", err)
		}
		events = append(events, journal.Event{Type: evIngest, Dataset: d, Data: data})
	}
	datasets := make([]string, 0, len(m.matSpecs))
	for d := range m.matSpecs {
		datasets = append(datasets, d)
	}
	sort.Strings(datasets)
	for _, d := range datasets {
		data, err := json.Marshal(materializeData{Specs: m.matSpecs[d]})
		if err != nil {
			return fmt.Errorf("workspace: compact: %w", err)
		}
		events = append(events, journal.Event{Type: evMaterialize, Dataset: d, Data: data})
	}
	// Replication fences must survive compaction: losing one would let a
	// fenced zombie primary's stale stream be accepted after a restart.
	m.fenceMu.Lock()
	fenced := make([]string, 0, len(m.fences))
	for d := range m.fences {
		fenced = append(fenced, d)
	}
	sort.Strings(fenced)
	for _, d := range fenced {
		data, err := json.Marshal(fenceData{Epoch: m.fences[d]})
		if err != nil {
			m.fenceMu.Unlock()
			return fmt.Errorf("workspace: compact fence: %w", err)
		}
		events = append(events, journal.Event{Type: evFence, Dataset: d, Data: data})
	}
	m.fenceMu.Unlock()
	// The manager rank (mu=60) is acquired here while matMu (20) is held —
	// an inversion of the documented order. It is safe only because the
	// appender gate is held exclusively above: no other goroutine can be
	// inside a mu->matMu nesting while Compact runs.
	//darwin:lockorder-exempt exclusive appender gate excludes all mu->matMu nestings for the duration of Compact
	m.mu.Lock()
	ids := make([]string, 0, len(m.items))
	for id := range m.items {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		// workspace (40) is acquired under matMu (20) — inverted. Safe for
		// the same reason as IngestedTail above: every ws.mu holder that can
		// reach matMu runs under the gate Compact holds exclusively.
		//darwin:lockorder-exempt exclusive appender gate excludes all ws.mu->matMu nestings for the duration of Compact
		data, err := json.Marshal(m.items[id].ws.Snapshot())
		if err != nil {
			m.mu.Unlock()
			return fmt.Errorf("workspace: compact snapshot %s: %w", id, err)
		}
		events = append(events, journal.Event{Type: evSnapshot, WS: id, Data: data})
	}
	m.mu.Unlock()
	return m.jw.Rewrite(events)
}

// Sync forces the journal to disk (no-op without a journal).
func (m *Manager) Sync() error {
	if m.jw == nil {
		return nil
	}
	return m.jw.Sync()
}

// Close flushes and closes the journal (no-op without a journal). Call it
// on graceful shutdown after the HTTP server has drained.
func (m *Manager) Close() error {
	if m.jw == nil {
		return nil
	}
	return m.jw.Close()
}

// Seq returns the journal's last assigned sequence number (0 without a
// journal). The replication tap uses it as the sync-barrier watermark.
func (m *Manager) Seq() uint64 {
	if m.jw == nil {
		return 0
	}
	return m.jw.Seq()
}

// Fence records (and journals, durably) that this shard rejects replication
// batches for the dataset below the given epoch. Fences only ratchet up.
func (m *Manager) Fence(dataset string, epoch uint64) error {
	if !m.recordFence(dataset, epoch) {
		return nil
	}
	if m.jw == nil {
		return nil
	}
	m.gate.RLock()
	_, err := m.jw.Append(evFence, "", dataset, fenceData{Epoch: epoch})
	m.gate.RUnlock()
	if err != nil {
		return fmt.Errorf("workspace: %w: %v", ErrJournal, err)
	}
	// A fence that is not on disk before the promote/demote is acknowledged
	// is no fence at all: force it down.
	return m.jw.Sync()
}

// recordFence ratchets the in-memory fence and reports whether it moved.
func (m *Manager) recordFence(dataset string, epoch uint64) bool {
	m.fenceMu.Lock()
	defer m.fenceMu.Unlock()
	if epoch <= m.fences[dataset] {
		return false
	}
	m.fences[dataset] = epoch
	return true
}

// Fences returns a copy of the per-dataset fence table.
func (m *Manager) Fences() map[string]uint64 {
	m.fenceMu.Lock()
	defer m.fenceMu.Unlock()
	out := make(map[string]uint64, len(m.fences))
	for d, e := range m.fences {
		out[d] = e
	}
	return out
}

// AdoptSnapshot installs a workspace from a snapshot taken elsewhere — the
// promotion path: a warm standby's state becomes live here, journaled as a
// snapshot event so it survives this shard's own restarts. An existing
// workspace with the same ID is replaced (the snapshot is authoritative).
func (m *Manager) AdoptSnapshot(snap *Snapshot) error {
	m.gate.RLock()
	defer m.gate.RUnlock()
	eng, ok := m.engines[snap.Dataset]
	if !ok {
		return fmt.Errorf("workspace: unknown dataset %q", snap.Dataset)
	}
	//darwin:lockorder-exempt closure construction only; the gate RLock inside runs on the caller stack of the LogFunc, not here
	ws, err := Restore(eng, snap, m.logFor(snap.ID))
	if err != nil {
		return err
	}
	if m.jw != nil {
		if _, err := m.jw.Append(evSnapshot, snap.ID, "", snap); err != nil {
			return fmt.Errorf("workspace: %w: %v", ErrJournal, err)
		}
	}
	m.mu.Lock()
	m.items[snap.ID] = &entry{ws: ws, lastUsed: m.now()}
	m.mu.Unlock()
	return nil
}

// AdoptMaterialized replays another shard's rule materializations for a
// dataset into the shared index. Fresh specs are journaled via the
// materialize hook; already-known ones dedup to nothing.
func (m *Manager) AdoptMaterialized(dataset string, specs []string) error {
	eng, ok := m.engines[dataset]
	if !ok {
		return fmt.Errorf("workspace: unknown dataset %q", dataset)
	}
	for _, spec := range specs {
		if _, _, err := eng.MaterializeRule(spec); err != nil {
			return fmt.Errorf("workspace: adopt materialized rule %q: %w", spec, err)
		}
	}
	return nil
}

// MaterializedSpecs returns the journaled rule materializations recorded for
// a dataset, in journal order.
func (m *Manager) MaterializedSpecs(dataset string) []string {
	m.matMu.Lock()
	defer m.matMu.Unlock()
	return append([]string(nil), m.matSpecs[dataset]...)
}

// IDsByDataset returns the live workspace IDs on the given dataset, sorted.
func (m *Manager) IDsByDataset(dataset string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for id, en := range m.items {
		if en.ws.Dataset() == dataset {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// EvictDataset drops every live workspace on the given dataset (journaling
// the evictions) and returns the dropped IDs — the demotion path: a fenced
// ex-primary must stop serving state that now lives on the promoted shard.
func (m *Manager) EvictDataset(dataset, reason string) []string {
	m.gate.RLock()
	defer m.gate.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for id, en := range m.items {
		if en.ws.Dataset() == dataset {
			m.evictLocked(id, reason)
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

func errUnknown(id string) error {
	return fmt.Errorf("workspace: %q: %w", id, ErrUnknownWorkspace)
}

// RecoveryStats reports what Recover reconstructed.
type RecoveryStats struct {
	// Events is the number of journal events read.
	Events int
	// Workspaces is the number of live workspaces after recovery.
	Workspaces int
	// Skipped maps workspace IDs that could not be recovered to the reason.
	Skipped map[string]string
}

// Recover replays a journal's events through the same apply methods that
// served them live, reconstructing every live workspace byte-identically.
// It must be called once, before the manager serves traffic. Workspaces
// whose replay fails (missing dataset, corpus mismatch, or a suggest that
// no longer recomputes the journaled assignment) are skipped and reported
// in the stats; the rest recover normally. The event-by-event apply logic
// lives in Replayer (replay.go), shared with the replication standby path.
func (m *Manager) Recover(events []journal.Event) RecoveryStats {
	start := time.Now()
	r := m.NewReplayer()
	defer r.Close()
	for _, ev := range events {
		r.Apply(ev)
	}
	stats := r.Stats()
	recoveryDuration.Set(time.Since(start).Seconds())
	recoveryEvents.Set(float64(stats.Events))
	recoverySkipped.Set(float64(len(stats.Skipped)))
	return stats
}

// replayTarget resolves the workspace an event applies to during recovery.
// Events for unknown workspaces are skipped silently: they are the benign
// trace of an operation that raced a TTL eviction (the live answer landed
// after the evict event; the final state — workspace gone — is identical).
func (m *Manager) replayTarget(id string, raw json.RawMessage, v any, broken map[string]string) (*Workspace, bool) {
	if _, bad := broken[id]; bad {
		return nil, false
	}
	if json.Unmarshal(raw, v) != nil {
		return nil, false
	}
	m.mu.Lock()
	en, ok := m.items[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return en.ws, true
}
