package workspace

import "repro/internal/ingest"

// Journal event types emitted by the manager and the workspace apply
// methods. Replay applies them in file order through the same code paths
// that served live traffic (see Manager.Recover).
const (
	evCreate      = "create"
	evAttach      = "attach"
	evDetach      = "detach"
	evSuggest     = "suggest"
	evAnswer      = "answer"
	evEvict       = "evict"
	evMaterialize = "materialize"
	evSnapshot    = "snapshot"
	evFence       = "fence"
	evIngest      = "ingest"
)

// createData records a workspace creation with the budget and seed already
// resolved against the engine defaults, so replay does not depend on server
// configuration at restart time. CorpusLen pins the corpus the workspace
// was created over; recovery refuses to replay onto a different corpus.
type createData struct {
	Dataset   string `json:"dataset"`
	CorpusLen int    `json:"corpus_len"`
	Options
}

type attachData struct {
	Annotator string `json:"annotator"`
}

type detachData struct {
	Annotator string `json:"annotator"`
}

// suggestData records which rule the deterministic selection assigned, so
// replay can verify it recomputes the same assignment (a mismatch means the
// engine was rebuilt differently and the workspace cannot be recovered).
type suggestData struct {
	Annotator string `json:"annotator"`
	Key       string `json:"key"`
}

type answerData struct {
	Annotator string `json:"annotator"`
	Key       string `json:"key"`
	Accept    bool   `json:"accept"`
}

type evictData struct {
	Reason string `json:"reason,omitempty"`
}

// fenceData records a replication fence for a dataset: once journaled, this
// shard rejects replication batches for the dataset stamped with an epoch
// below Epoch, even across restarts and compactions. It is how a promoted
// follower (and a demoted ex-primary) makes zombie-rejection durable.
type fenceData struct {
	Epoch uint64 `json:"epoch"`
}

// ingestData records a live corpus-growth batch for a dataset. From is the
// corpus length the batch was applied at; replay validates it so a duplicate
// delivery (recovery after a crash between apply and acknowledge, or a
// replication retry) is skipped instead of double-appended. Compaction
// re-emits the whole ingested tail as one consolidated batch, ordered before
// the snapshots that were taken over the grown corpus.
type ingestData struct {
	From      int               `json:"from"`
	Sentences []ingest.Sentence `json:"sentences"`
}

// materializeData records seed-rule materializations into a dataset's
// shared index — the one post-build index mutation. These events are
// appended under the engine's index write lock, so their journal order
// matches the order concurrent hierarchy generations observed them.
type materializeData struct {
	Specs []string `json:"specs"`
}
