//go:build race

package workspace

// raceEnabled reports that the race detector is instrumenting this build;
// wall-clock assertions are skipped under its ~10x slowdown.
const raceEnabled = true
