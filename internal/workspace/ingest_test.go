package workspace

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/ingest"
	"repro/internal/journal"
)

func ingestTestBatch(n int, tag string) []ingest.Sentence {
	batch := make([]ingest.Sentence, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, ingest.Sentence{
			Text:  "best way to get to the " + tag + " terminal",
			Label: 1,
		})
	}
	return batch
}

// TestIngestJournaledAndReplayed is the durability contract of evIngest: an
// acknowledged batch interleaved with annotation traffic must replay into a
// fresh manager to byte-identical workspace state and the same corpus
// length, and the recovered engine keeps serving suggestions.
func TestIngestJournaledAndReplayed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	live := newTestManager(t, path, ManagerConfig{})
	eng, _ := live.Engine("directions")
	boot := eng.Corpus().Len()

	ws, err := live.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Attach(ws.ID(), "alice"); err != nil {
		t.Fatal(err)
	}
	step := func() {
		sug, ok, err := live.Suggest(ws.ID(), "alice")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return
		}
		if _, err := live.Answer(ws.ID(), "alice", sug.Key, true); err != nil {
			t.Fatal(err)
		}
	}

	step()
	from, to, err := live.Ingest("directions", ingestTestBatch(30, "north"))
	if err != nil {
		t.Fatal(err)
	}
	if from != boot || to != boot+30 {
		t.Fatalf("first batch landed at [%d,%d), want [%d,%d)", from, to, boot, boot+30)
	}
	step()
	if _, to, err = live.Ingest("directions", ingestTestBatch(20, "south")); err != nil {
		t.Fatal(err)
	}
	if to != boot+50 {
		t.Fatalf("second batch ends at %d, want %d", to, boot+50)
	}
	step()

	lws, _ := live.Get(ws.ID())
	liveSnap, _ := json.Marshal(lws.Snapshot())
	liveReport := lws.Report()
	if err := live.Sync(); err != nil {
		t.Fatal(err)
	}

	events, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	restored := newTestManager(t, "", ManagerConfig{})
	stats := restored.Recover(events)
	if len(stats.Skipped) != 0 {
		t.Fatalf("replay skipped workspaces: %v", stats.Skipped)
	}
	reng, _ := restored.Engine("directions")
	if got := reng.Corpus().Len(); got != boot+50 {
		t.Fatalf("recovered corpus has %d sentences, want %d", got, boot+50)
	}
	rws, ok := restored.Get(ws.ID())
	if !ok {
		t.Fatal("workspace not recovered")
	}
	restoredSnap, _ := json.Marshal(rws.Snapshot())
	if !bytes.Equal(liveSnap, restoredSnap) {
		t.Fatalf("replayed state differs:\nlive:     %s\nreplayed: %s", liveSnap, restoredSnap)
	}
	if liveReport.Questions != rws.Report().Questions || len(liveReport.Accepted) != len(rws.Report().Accepted) {
		t.Fatal("replayed report differs from live report")
	}
	// The recovered engine keeps serving over the grown corpus.
	if _, _, err := restored.Suggest(ws.ID(), "alice"); err != nil {
		t.Fatalf("post-recovery suggest: %v", err)
	}
}

// TestIngestCompactionConsolidatesTail: compaction re-emits the ingested
// tail as one consolidated batch ordered before every snapshot, so recovery
// from a compacted journal rebuilds the same corpus.
func TestIngestCompactionConsolidatesTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	live := newTestManager(t, path, ManagerConfig{CompactEvery: -1})
	eng, _ := live.Engine("directions")
	boot := eng.Corpus().Len()

	ws, err := live.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Attach(ws.ID(), "alice"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := live.Ingest("directions", ingestTestBatch(10, "pier")); err != nil {
			t.Fatal(err)
		}
		sug, ok, err := live.Suggest(ws.ID(), "alice")
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if _, err := live.Answer(ws.ID(), "alice", sug.Key, i == 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := live.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction traffic lands after the snapshot.
	if _, _, err := live.Ingest("directions", ingestTestBatch(5, "station")); err != nil {
		t.Fatal(err)
	}
	lws, _ := live.Get(ws.ID())
	liveSnap, _ := json.Marshal(lws.Snapshot())
	if err := live.Sync(); err != nil {
		t.Fatal(err)
	}

	events, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	// The consolidated ingest tail must precede the first snapshot, so the
	// snapshot's corpus-length check sees the grown corpus.
	firstIngest, firstSnapshot := -1, -1
	ingests := 0
	for i, ev := range events {
		switch ev.Type {
		case evIngest:
			if firstIngest < 0 {
				firstIngest = i
			}
			ingests++
		case evSnapshot:
			if firstSnapshot < 0 {
				firstSnapshot = i
			}
		}
	}
	if firstIngest != 0 {
		t.Fatalf("compacted journal starts with %q, want consolidated ingest first", events[0].Type)
	}
	if firstSnapshot >= 0 && firstIngest > firstSnapshot {
		t.Fatal("consolidated ingest is ordered after a snapshot")
	}
	if ingests != 2 { // consolidated tail + the post-compaction batch
		t.Fatalf("compacted journal has %d ingest events, want 2", ingests)
	}

	restored := newTestManager(t, "", ManagerConfig{})
	if stats := restored.Recover(events); len(stats.Skipped) != 0 {
		t.Fatalf("replay skipped workspaces: %v", stats.Skipped)
	}
	reng, _ := restored.Engine("directions")
	if got := reng.Corpus().Len(); got != boot+35 {
		t.Fatalf("recovered corpus has %d sentences, want %d", got, boot+35)
	}
	rws, ok := restored.Get(ws.ID())
	if !ok {
		t.Fatal("workspace not recovered from compacted journal")
	}
	restoredSnap, _ := json.Marshal(rws.Snapshot())
	if !bytes.Equal(liveSnap, restoredSnap) {
		t.Fatalf("state after compaction differs:\nlive:     %s\nrestored: %s", liveSnap, restoredSnap)
	}
}

// TestIngestReplayIsIdempotent: replaying a journal whose tail duplicates an
// ingest record (e.g. a retry that was journaled twice before the crash)
// applies the batch once — the From/corpus-length match is the dedup key.
func TestIngestReplayIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	live := newTestManager(t, path, ManagerConfig{})
	eng, _ := live.Engine("directions")
	boot := eng.Corpus().Len()
	if _, _, err := live.Ingest("directions", ingestTestBatch(10, "dup")); err != nil {
		t.Fatal(err)
	}
	if err := live.Sync(); err != nil {
		t.Fatal(err)
	}
	events, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	var dup []journal.Event
	for _, ev := range events {
		dup = append(dup, ev)
		if ev.Type == evIngest {
			dup = append(dup, ev) // duplicate the ingest record
		}
	}
	restored := newTestManager(t, "", ManagerConfig{})
	restored.Recover(dup)
	reng, _ := restored.Engine("directions")
	if got := reng.Corpus().Len(); got != boot+10 {
		t.Fatalf("duplicated ingest replayed to %d sentences, want %d", got, boot+10)
	}
}
