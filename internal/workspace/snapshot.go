package workspace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/index"
)

// Snapshot is the full serialized state of a workspace, written into the
// journal by compaction. Because every derived RNG is seeded from
// (Seed, EventSeq) rather than from an evolving stream, restoring a
// snapshot resumes the exact deterministic event stream a full replay would
// produce: scores round-trip exactly through JSON (encoding/json emits
// shortest-round-trip float64), and the classifier model itself need not be
// captured — Restore refits it as a pure function of
// (positives, seed, LastRetrainSeq), reproducing the live model exactly.
type Snapshot struct {
	ID        string   `json:"id"`
	Dataset   string   `json:"dataset"`
	Seed      int64    `json:"seed"`
	Budget    int      `json:"budget"`
	CorpusLen int      `json:"corpus_len"`
	SeedRules []string `json:"seed_rules,omitempty"`

	// HierarchyGenerations is deliberately absent: it counts regenerations
	// performed by this process (a restored workspace regenerates its cache
	// on first use), so it is diagnostics, not logical state.
	EventSeq  uint64 `json:"event_seq"`
	Retrains  int    `json:"retrains"`
	Questions int    `json:"questions"`
	// LastRetrainSeq is the event sequence the last retrain was seeded with;
	// Restore replays that one training step so the recovered classifier is
	// the same fitted model (and Trained() flag) the live workspace had.
	LastRetrainSeq uint64 `json:"last_retrain_seq"`

	Positives []int     `json:"positives"`
	Queried   []string  `json:"queried"`
	Scores    []float64 `json:"scores"`

	Accepted []Record `json:"accepted,omitempty"`
	History  []Record `json:"history,omitempty"`

	Annotators []AnnotatorSnapshot `json:"annotators,omitempty"`
}

// AnnotatorSnapshot is one attached annotator's state, in attach order.
type AnnotatorSnapshot struct {
	Name      string      `json:"name"`
	Questions int         `json:"questions"`
	Accepts   int         `json:"accepts"`
	Pending   *Suggestion `json:"pending,omitempty"`
}

// Snapshot captures the workspace's full state.
func (ws *Workspace) Snapshot() *Snapshot {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	snap := &Snapshot{
		ID:             ws.id,
		Dataset:        ws.dataset,
		Seed:           ws.seed,
		Budget:         ws.budget,
		CorpusLen:      ws.corpusLen,
		SeedRules:      append([]string(nil), ws.seedRules...),
		EventSeq:       ws.eventSeq,
		Retrains:       ws.retrains,
		Questions:      ws.questions,
		LastRetrainSeq: ws.lastRetrainSeq,
		Positives:      ws.positiveIDsLocked(),
		Queried:        sortedStrings(ws.queried),
		Scores:         append([]float64(nil), ws.scores...),
		Accepted:       append([]Record(nil), ws.accepted...),
		History:        append([]Record(nil), ws.history...),
	}
	for _, name := range ws.annOrder {
		an := ws.annotators[name]
		as := AnnotatorSnapshot{Name: an.name, Questions: an.questions, Accepts: an.accepts}
		if an.pending != nil {
			p := *an.pending
			as.Pending = &p
		}
		snap.Annotators = append(snap.Annotators, as)
	}
	return snap
}

// Restore reconstructs a workspace from a snapshot. Seed rules are
// re-materialized in the shared index (a no-op when the journal's
// materialize events already replayed them); pending suggestions resolve
// their coverage from the index, which is immutable for materialized keys.
func Restore(eng *core.Engine, snap *Snapshot, log LogFunc) (*Workspace, error) {
	corp := eng.Corpus()
	// The corpus may be longer than the snapshot saw (sentences ingested
	// after the snapshot, or a compacted journal replaying ingest events
	// before the snapshot record); the first Suggest/retrain heals the gap
	// via growLocked. Shorter means the dataset was rebuilt differently.
	if corp.Len() < snap.CorpusLen {
		return nil, fmt.Errorf("workspace: snapshot %s was taken over a corpus of %d sentences, engine has %d (dataset rebuilt differently?)", snap.ID, snap.CorpusLen, corp.Len())
	}
	if len(snap.Scores) != snap.CorpusLen {
		return nil, fmt.Errorf("workspace: snapshot %s has %d scores for %d sentences", snap.ID, len(snap.Scores), snap.CorpusLen)
	}
	for _, spec := range snap.SeedRules {
		if _, _, err := eng.MaterializeRule(spec); err != nil {
			return nil, fmt.Errorf("workspace: snapshot %s seed rule %q: %w", snap.ID, spec, err)
		}
	}
	ws := &Workspace{
		eng:            eng,
		log:            log,
		id:             snap.ID,
		dataset:        snap.Dataset,
		seed:           snap.Seed,
		budget:         snap.Budget,
		corpusLen:      snap.CorpusLen,
		seedRules:      append([]string(nil), snap.SeedRules...),
		positives:      make(map[int]bool, len(snap.Positives)),
		posBits:        bitset.New(snap.CorpusLen),
		queried:        make(map[string]bool, len(snap.Queried)),
		scores:         append([]float64(nil), snap.Scores...),
		clf:            eng.AttachClassifier(snap.Seed),
		retrains:       snap.Retrains,
		lastRetrainSeq: snap.LastRetrainSeq,
		eventSeq:       snap.EventSeq,
		questions:      snap.Questions,
		accepted:       append([]Record(nil), snap.Accepted...),
		history:        append([]Record(nil), snap.History...),
		annotators:     make(map[string]*annotator, len(snap.Annotators)),
	}
	for _, id := range snap.Positives {
		if id < 0 || id >= snap.CorpusLen {
			return nil, fmt.Errorf("workspace: snapshot %s has out-of-range positive %d", snap.ID, id)
		}
		ws.positives[id] = true
		ws.posBits.Add(id)
	}
	for _, key := range snap.Queried {
		ws.queried[key] = true
	}
	var resolveErr error
	for _, as := range snap.Annotators {
		// lastSeen restarts at restore time: idleness is process-local, and
		// a just-recovered (or just-promoted) attachment must get a full TTL
		// window before the sweep may reclaim it.
		an := &annotator{name: as.Name, questions: as.Questions, accepts: as.Accepts, lastSeen: time.Now()}
		if as.Pending != nil {
			p := *as.Pending
			an.pending = &p
			eng.WithIndexRead(func(ix *index.Index) {
				an.pendingCov = ix.Coverage(p.Key)
			})
			if an.pendingCov == nil {
				resolveErr = fmt.Errorf("workspace: snapshot %s: pending rule %q is not in the index", snap.ID, p.Key)
			}
		}
		ws.annotators[as.Name] = an
		ws.annOrder = append(ws.annOrder, as.Name)
	}
	if resolveErr != nil {
		return nil, resolveErr
	}
	// Refit the classifier the live workspace had: the last retrain was a
	// pure function of (positives, seed, lastRetrainSeq), and P only changes
	// on the accepts that trigger retrains, so replaying that one training
	// step reproduces the exact model. Without this a restored workspace
	// reported scores while Trained() stayed false until the next accept.
	// The restored score vector stays authoritative — no rescoring here.
	if snap.Retrains > 0 {
		ws.clf.Reseed(mix(snap.Seed, snap.LastRetrainSeq))
		if err := ws.clf.TrainFromPositives(ws.positives); err != nil {
			return nil, fmt.Errorf("workspace: snapshot %s: refit classifier: %w", snap.ID, err)
		}
	}
	ws.publishStatsLocked()
	return ws, nil
}

func sortedStrings(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
