package workspace

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/journal"
)

// TestEvictSurfacesJournalFailure pins the durability half of the delete
// contract (found by darwinlint's journalack/errcheck sweep): when the
// eviction record cannot be journaled, Evict must say so instead of letting
// the caller acknowledge a delete that journal replay would undo.
func TestEvictSurfacesJournalFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	eng := newTestEngine(t)
	jw, _, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(map[string]*core.Engine{"directions": eng}, jw, ManagerConfig{})
	ws, err := m.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the journal out from under the manager: the evict append fails.
	jw.Close()
	existed, err := m.Evict(ws.ID(), "deleted")
	if !existed {
		t.Fatal("evict reported the workspace as unknown")
	}
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("evict on a dead journal: err=%v, want ErrJournal", err)
	}
}

// TestEvictDurableBeforeReturn proves a successful Evict has the eviction on
// disk before it returns: a second manager recovered from the journal file —
// while the first manager's writer is still open, as after a crash — must
// not resurrect the workspace. The writer is configured with lazy batching
// so the test fails if Evict forgets its explicit Sync.
func TestEvictDurableBeforeReturn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	eng := newTestEngine(t)
	jw, _, err := journal.Open(path, journal.Options{SyncEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	m := NewManager(map[string]*core.Engine{"directions": eng}, jw, ManagerConfig{})
	ws, err := m.Create("directions", Options{SeedRules: []string{seedRule}, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	id := ws.ID()
	if existed, err := m.Evict(id, "deleted"); !existed || err != nil {
		t.Fatalf("evict: existed=%v err=%v", existed, err)
	}

	// Crash-recover from the same file without closing the live writer.
	recovered, revents, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	m2 := NewManager(map[string]*core.Engine{"directions": newTestEngine(t)}, nil, ManagerConfig{})
	m2.Recover(revents)
	if _, ok := m2.Peek(id); ok {
		t.Fatal("evicted workspace resurrected by replay: evict event not durable before Evict returned")
	}
}
