package workspace

import (
	"encoding/json"
	"fmt"

	"repro/internal/journal"
)

// Replayer applies journal events to a manager incrementally, through the
// same apply methods that serve live traffic. Manager.Recover wraps one in a
// single pass over a recovered log; replication followers (internal/
// replicate) keep one open for the lifetime of a warm standby and feed it
// streamed batches as the primary ships them.
//
// While a Replayer is open the manager suppresses journaling and TTL
// side effects (recovering mode), so a standby manager must be dedicated to
// replay — it cannot serve live traffic at the same time. Apply is not safe
// for concurrent use.
type Replayer struct {
	m      *Manager
	events int
	broken map[string]string
}

// NewReplayer puts the manager into recovering mode and returns a replayer
// over it. Call Close to leave recovering mode.
func (m *Manager) NewReplayer() *Replayer {
	m.recovering.Store(true)
	return &Replayer{m: m, broken: make(map[string]string)}
}

// Close leaves recovering mode. The replayer must not be used afterwards.
func (r *Replayer) Close() {
	r.m.recovering.Store(false)
}

// Stats summarizes what has been applied so far.
func (r *Replayer) Stats() RecoveryStats {
	stats := RecoveryStats{Events: r.events, Skipped: make(map[string]string, len(r.broken))}
	for id, reason := range r.broken {
		stats.Skipped[id] = reason
	}
	r.m.mu.Lock()
	stats.Workspaces = len(r.m.items)
	r.m.mu.Unlock()
	return stats
}

// fail marks a workspace unrecoverable and drops any partial reconstruction.
func (r *Replayer) fail(id, format string, args ...any) {
	r.broken[id] = fmt.Sprintf(format, args...)
	r.m.mu.Lock()
	delete(r.m.items, id)
	r.m.mu.Unlock()
}

func decodeEvent(raw json.RawMessage, v any) bool {
	return json.Unmarshal(raw, v) == nil
}

// Apply replays one journal event. Events for workspaces already marked
// broken are skipped; unknown event types are ignored (forward
// compatibility: an older binary replaying a newer journal drops what it
// does not understand rather than failing recovery).
//
//darwin:replaypure
func (r *Replayer) Apply(ev journal.Event) {
	m := r.m
	r.events++
	switch ev.Type {
	case evMaterialize:
		var d materializeData
		eng, ok := m.engines[ev.Dataset]
		if !ok || !decodeEvent(ev.Data, &d) {
			return
		}
		for _, spec := range d.Specs {
			eng.MaterializeRule(spec)
		}
		m.matMu.Lock()
		m.recordMaterializedLocked(ev.Dataset, d.Specs)
		m.matMu.Unlock()
	case evIngest:
		var d ingestData
		eng, ok := m.engines[ev.Dataset]
		if !ok || !decodeEvent(ev.Data, &d) {
			return
		}
		// From pins where the batch was applied: a mismatch means the batch
		// already replayed (duplicate delivery after a crash or replication
		// retry) or the dataset was rebuilt differently; either way skipping
		// is the safe idempotent choice.
		if eng.Corpus().Len() != d.From {
			return
		}
		eng.Ingest(d.Sentences)
	case evFence:
		var d fenceData
		if decodeEvent(ev.Data, &d) {
			m.recordFence(ev.Dataset, d.Epoch)
		}
	case evCreate:
		if _, bad := r.broken[ev.WS]; bad {
			return
		}
		var d createData
		if !decodeEvent(ev.Data, &d) {
			r.fail(ev.WS, "corrupt create event")
			return
		}
		eng, ok := m.engines[d.Dataset]
		if !ok {
			r.fail(ev.WS, "dataset %q is not served", d.Dataset)
			return
		}
		if eng.Corpus().Len() != d.CorpusLen {
			r.fail(ev.WS, "corpus has %d sentences, workspace was created over %d", eng.Corpus().Len(), d.CorpusLen)
			return
		}
		ws, err := New(eng, ev.WS, d.Dataset, d.Options, m.logFor(ev.WS))
		if err != nil {
			r.fail(ev.WS, "replay create: %v", err)
			return
		}
		m.mu.Lock()
		m.items[ev.WS] = &entry{ws: ws, lastUsed: m.now()}
		m.mu.Unlock()
	case evSnapshot:
		var snap Snapshot
		if !decodeEvent(ev.Data, &snap) {
			r.fail(ev.WS, "corrupt snapshot event")
			return
		}
		eng, ok := m.engines[snap.Dataset]
		if !ok {
			r.fail(ev.WS, "dataset %q is not served", snap.Dataset)
			return
		}
		ws, err := Restore(eng, &snap, m.logFor(ev.WS))
		if err != nil {
			r.fail(ev.WS, "restore snapshot: %v", err)
			return
		}
		delete(r.broken, ev.WS) // the snapshot is authoritative
		m.mu.Lock()
		m.items[ev.WS] = &entry{ws: ws, lastUsed: m.now()}
		m.mu.Unlock()
	case evAttach:
		var d attachData
		if ws, ok := m.replayTarget(ev.WS, ev.Data, &d, r.broken); ok {
			if err := ws.Attach(d.Annotator); err != nil {
				r.fail(ev.WS, "replay attach: %v", err)
			}
		}
	case evDetach:
		var d detachData
		if ws, ok := m.replayTarget(ev.WS, ev.Data, &d, r.broken); ok {
			if err := ws.Detach(d.Annotator); err != nil {
				r.fail(ev.WS, "replay detach: %v", err)
			}
		}
	case evSuggest:
		var d suggestData
		if ws, ok := m.replayTarget(ev.WS, ev.Data, &d, r.broken); ok {
			sug, ok, err := ws.Suggest(d.Annotator)
			switch {
			case err != nil:
				r.fail(ev.WS, "replay suggest: %v", err)
			case !ok:
				r.fail(ev.WS, "replay suggest for %q produced no assignment (journaled %q)", d.Annotator, d.Key)
			case sug.Key != d.Key:
				r.fail(ev.WS, "replay diverged: suggest recomputed %q, journal says %q (engine rebuilt differently?)", sug.Key, d.Key)
			}
		}
	case evAnswer:
		var d answerData
		if ws, ok := m.replayTarget(ev.WS, ev.Data, &d, r.broken); ok {
			if _, err := ws.Answer(d.Annotator, d.Key, d.Accept); err != nil {
				r.fail(ev.WS, "replay answer: %v", err)
			}
		}
	case evEvict:
		m.mu.Lock()
		delete(m.items, ev.WS)
		m.mu.Unlock()
		delete(r.broken, ev.WS)
	}
}
