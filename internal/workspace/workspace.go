// Package workspace implements the paper's parallel-discovery deployment
// mode: several annotators attach to one shared Workspace per dataset and
// discover rules over a single shared labeled set. The workspace owns the
// shared positive set P, the classifier and the accepted-rule list; each
// annotator's Suggest draws from the shared candidate hierarchy with
// per-annotator assignment (no two annotators are shown the same candidate
// rule concurrently), and Answer merges accepts/rejects back into the shared
// state under the engine's existing concurrency contract.
//
// # Determinism and replay
//
// A workspace's entire state evolution is a pure function of (engine,
// creation options, applied event sequence): candidate selection is a
// deterministic argmax over the shared hierarchy, and every use of
// randomness (presentation-sample drawing, classifier negative sampling) is
// seeded from the workspace seed and the event sequence number rather than
// from an evolving RNG stream. That is what makes the journal
// (internal/journal) sufficient for crash recovery: replaying the event log
// through the same apply methods that served live traffic reconstructs
// byte-identical workspace state, and a snapshot (which captures the event
// sequence number) resumes the same deterministic stream.
//
// The shared hierarchy is cached across events and regenerated only when
// |P| or the index version changes — once per positive-set change for the
// whole workspace, not once per annotator (HierarchyGenerations exposes the
// count).
package workspace

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/traversal"
)

// Workspace telemetry: every applied (journaled) event is counted by type,
// and the two interactive verbs get latency histograms measured around the
// whole call — lock wait, shared-hierarchy work and journal append included,
// since that is what an annotator actually waits on.
var (
	wsEventsTotal = obs.Default().CounterVec("darwin_workspace_events_total",
		"State-changing workspace events applied (and journaled), by event type.", "type")
	wsSuggestDurations = obs.Default().Histogram("darwin_workspace_suggest_duration_seconds",
		"Latency of one shared-workspace suggest (includes hierarchy regeneration when the positive set changed).",
		obs.LatencyBuckets)
	wsAnswerDurations = obs.Default().Histogram("darwin_workspace_answer_duration_seconds",
		"Latency of one shared-workspace answer (includes classifier retrain on accept).",
		obs.LatencyBuckets)
	wsAttachmentsExpired = obs.Default().Counter("darwin_workspace_attachments_expired_total",
		"Annotator attachments detached by the per-attachment idle TTL.")
)

// Sentinel errors, exposed so the HTTP layer can map them to status codes.
var (
	ErrUnknownWorkspace   = errors.New("unknown or expired workspace")
	ErrUnknownAnnotator   = errors.New("unknown annotator")
	ErrDuplicateAnnotator = errors.New("annotator already attached")
	ErrNoPending          = errors.New("no pending suggestion (call suggest first)")
	ErrKeyMismatch        = errors.New("answer does not match the pending suggestion")
	// ErrJournal marks a failed journal append: the workspace refuses new
	// state changes rather than keep acknowledging work that would not
	// survive a restart.
	ErrJournal = errors.New("journal write failed")
)

// Options configures one workspace. The manager resolves Budget and Seed
// against the engine defaults before journaling the create event, so New
// requires both to be set (replay must not depend on mutable server
// defaults).
type Options struct {
	SeedRules       []string `json:"seed_rules,omitempty"`
	SeedPositiveIDs []int    `json:"seed_positive_ids,omitempty"`
	Budget          int      `json:"budget"`
	Seed            int64    `json:"seed"`
}

// Suggestion is one candidate rule assigned to an annotator. Question and
// BudgetLeft are fixed at assignment time under the workspace lock,
// counting the other annotators' outstanding assignments, so concurrent
// annotators see distinct question numbers.
type Suggestion struct {
	Key         string
	Rule        string
	Coverage    int
	NewCoverage int
	Benefit     float64
	AvgBenefit  float64
	SampleIDs   []int
	// Question is this suggestion's provisional 1-based question number
	// (answered questions plus outstanding assignments including this one).
	Question int
	// BudgetLeft is the shared budget remaining after this assignment.
	BudgetLeft int
}

// Record is one rule verdict (or seed rule) in the shared history, tagged
// with the annotator who answered it (empty for seed rules).
type Record struct {
	core.RuleRecord
	Annotator string
}

// annotator is one attached annotator's private view: the suggestion
// assigned to them and not yet answered, plus per-annotator counters.
type annotator struct {
	name      string
	questions int
	accepts   int
	pending   *Suggestion
	// pendingCov is the full coverage set of the pending suggestion.
	pendingCov []int
	// lastSeen is the wall-clock time of the annotator's last interaction
	// (attach/suggest/answer). It drives the per-attachment idle TTL and is
	// deliberately not journaled or snapshotted: liveness is process-local,
	// and the *detach* it eventually triggers is the journaled event.
	lastSeen time.Time
}

// LogFunc journals one applied event. It is called inside the workspace's
// critical section — for suggest events, while the engine's index read lock
// is still held, so journal order matches the lock order concurrent index
// mutations were observed in. A returned error makes the workspace refuse
// further state changes (see ErrJournal).
type LogFunc func(typ string, data any) error

// Workspace is one shared multi-annotator discovery state. All methods are
// safe for concurrent use; a single mutex serializes state changes, which
// also defines the journal's replay order.
type Workspace struct {
	mu  sync.Mutex //darwin:lockrank workspace
	eng *core.Engine
	log LogFunc
	// logErr is the sticky first journal-append failure; once set, every
	// state-changing method fails with ErrJournal (the in-memory state is
	// ahead of the log by at most the event that failed, and replay after a
	// restart recovers everything acknowledged before it).
	logErr error

	id        string
	dataset   string
	seed      int64
	budget    int
	corpusLen int
	seedRules []string

	positives map[int]bool
	posBits   bitset.Set
	queried   map[string]bool
	scores    []float64
	clf       *classifier.SentenceClassifier
	retrains  int
	// lastRetrainSeq is the event sequence number the last retrain was seeded
	// with. Snapshots persist it so Restore can refit the classifier to the
	// exact model the live workspace had (same RNG stream), keeping
	// Trained() — and every report derived from the classifier — consistent
	// across recovery instead of flipping false until the next accept.
	lastRetrainSeq uint64
	// eventSeq counts applied events (create = 0); it seeds every derived
	// RNG so replayed and snapshot-restored workspaces draw the same
	// streams.
	eventSeq uint64

	accepted  []Record
	history   []Record
	questions int

	hier      *hierarchy.Hierarchy
	hierPos   int
	hierIxVer uint64
	hierGens  int

	annotators map[string]*annotator
	annOrder   []string

	// statsSnap is the cached status snapshot behind Stats: monitoring polls
	// read it lock-free, so a status poll never waits on ws.mu held across an
	// in-flight shared suggest (which can hold the mutex through a full
	// hierarchy regeneration under the engine's index lock).
	statsSnap atomic.Pointer[statsCounters]
}

// statsCounters is the cheap status snapshot published after every applied
// state change. Budget is immutable and lives on the workspace itself.
type statsCounters struct {
	questions int
	positives int
}

// publishStatsLocked refreshes the lock-free status snapshot. Callers hold
// ws.mu (or are in a constructor before the workspace is shared).
func (ws *Workspace) publishStatsLocked() {
	ws.statsSnap.Store(&statsCounters{questions: ws.questions, positives: len(ws.positives)})
}

// mix derives a deterministic per-event RNG seed from the workspace seed and
// an event sequence number (splitmix64-style finalizer).
func mix(seed int64, seq uint64) int64 {
	x := uint64(seed) ^ (seq+1)*0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return int64(x)
}

// New creates a workspace on the engine: it materializes the seed rules in
// the shared index (through the engine's write lock, firing any journaling
// hook), seeds the shared positive set and trains the initial classifier.
// log may be nil (volatile workspace).
//
//darwin:replaypure
func New(eng *core.Engine, id, dataset string, opts Options, log LogFunc) (*Workspace, error) {
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("workspace: budget must be resolved before creation")
	}
	if opts.Seed == 0 {
		return nil, fmt.Errorf("workspace: seed must be resolved before creation")
	}
	corp := eng.Corpus()
	ws := &Workspace{
		eng:        eng,
		log:        log,
		id:         id,
		dataset:    dataset,
		seed:       opts.Seed,
		budget:     opts.Budget,
		corpusLen:  corp.Len(),
		seedRules:  append([]string(nil), opts.SeedRules...),
		positives:  make(map[int]bool),
		posBits:    bitset.New(corp.Len()),
		queried:    make(map[string]bool),
		scores:     make([]float64, corp.Len()),
		clf:        eng.AttachClassifier(opts.Seed),
		annotators: make(map[string]*annotator),
	}
	for i := range ws.scores {
		ws.scores[i] = 0.5
	}
	// Validate every seed rule before mutating shared state.
	rules := make([]string, 0, len(opts.SeedRules))
	for _, spec := range opts.SeedRules {
		h, err := eng.ParseRule(spec)
		if err != nil {
			return nil, fmt.Errorf("workspace: seed rule %q: %w", spec, err)
		}
		rules = append(rules, h.String())
	}
	for i, spec := range opts.SeedRules {
		key, cov, err := eng.MaterializeRule(spec)
		if err != nil {
			return nil, fmt.Errorf("workspace: seed rule %q: %w", spec, err)
		}
		added := ws.addPositives(cov)
		ws.accepted = append(ws.accepted, Record{RuleRecord: core.RuleRecord{
			Key:            key,
			Rule:           rules[i],
			Coverage:       len(cov),
			Accepted:       true,
			CoverageIDs:    cov,
			AddedIDs:       added,
			PositivesAfter: len(ws.positives),
		}})
		ws.queried[key] = true
	}
	for _, id := range opts.SeedPositiveIDs {
		if corp.Sentence(id) != nil && !ws.positives[id] {
			ws.positives[id] = true
			ws.posBits.Add(id)
		}
	}
	if len(ws.positives) == 0 {
		return nil, fmt.Errorf("workspace: seeds produced no positive instances (need a seed rule with non-empty coverage or seed positive IDs)")
	}
	ws.retrain() // event 0: the create itself
	ws.eventSeq = 1
	ws.publishStatsLocked()
	return ws, nil
}

// ID returns the workspace ID.
func (ws *Workspace) ID() string { return ws.id }

// Dataset returns the dataset name the workspace was created on.
func (ws *Workspace) Dataset() string { return ws.dataset }

// Budget returns the shared oracle query budget.
func (ws *Workspace) Budget() int { return ws.budget }

// addPositives inserts coverage IDs into both representations of P and
// returns the newly added IDs (sorted). Callers hold ws.mu (or are in New).
//
//darwin:replaypure
func (ws *Workspace) addPositives(cov []int) []int {
	var added []int
	for _, id := range cov {
		if !ws.positives[id] {
			ws.positives[id] = true
			ws.posBits.Add(id)
			added = append(added, id)
		}
	}
	sort.Ints(added)
	return added
}

// growLocked extends the workspace's score vector and positive-set mirror
// after live-corpus growth: new sentences start at the untrained prior 0.5
// and outside P. Callers hold ws.mu (or are in New/Restore) and the engine
// read lock, under which the corpus length is stable.
//
//darwin:replaypure
func (ws *Workspace) growLocked() {
	n := ws.eng.Corpus().Len()
	if n <= ws.corpusLen {
		return
	}
	for len(ws.scores) < n {
		ws.scores = append(ws.scores, 0.5)
	}
	ws.posBits = ws.posBits.Grow(n)
	ws.corpusLen = n
}

// retrain refits the shared classifier on P and refreshes the scores,
// honouring the engine's lazy re-scoring settings. The negative-sampling RNG
// is reseeded from the current event sequence number, making the retrain a
// pure function of (P, seed, eventSeq, corpus length). It runs under the
// engine's read lock: training and scoring read the shared corpus and
// feature cache, which a concurrent ingest grows under the write lock.
//
//darwin:replaypure
func (ws *Workspace) retrain() {
	ws.eng.WithIndexRead(func(*index.Index) {
		ws.growLocked()
		ws.clf.Reseed(mix(ws.seed, ws.eventSeq))
		if err := ws.clf.TrainFromPositives(ws.positives); err != nil {
			// Training failure is tolerated live (previous model and scores
			// keep serving); lastRetrainSeq deliberately still points at the
			// last successful fit, so a snapshot Restore refits a seq that is
			// known to succeed.
			return
		}
		ws.lastRetrainSeq = ws.eventSeq
		ws.retrains++
		lazy, thr := ws.eng.LazyScoring()
		if !lazy || ws.retrains%3 == 1 || ws.retrains <= 1 {
			copy(ws.scores, ws.clf.ScoreAll())
			return
		}
		for id := 0; id < ws.corpusLen && id < len(ws.scores); id++ {
			if ws.scores[id] > thr || ws.positives[id] {
				ws.scores[id] = ws.clf.ScoreOne(id)
			}
		}
	})
}

// Attach registers a new annotator on the workspace.
//
//darwin:replaypure
func (ws *Workspace) Attach(name string) error {
	if name == "" {
		return fmt.Errorf("workspace: annotator name is required")
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := ws.journalErrLocked(); err != nil {
		return err
	}
	if _, dup := ws.annotators[name]; dup {
		return fmt.Errorf("workspace: annotator %q: %w", name, ErrDuplicateAnnotator)
	}
	//darwin:replaypure-exempt lastSeen is TTL bookkeeping that never enters journaled or replayed state
	ws.annotators[name] = &annotator{name: name, lastSeen: time.Now()}
	ws.annOrder = append(ws.annOrder, name)
	ws.applied("attach", attachData{Annotator: name})
	return ws.journalErrLocked()
}

// Detach removes an annotator; their unanswered pending suggestion (if any)
// is released back to the candidate pool so another annotator can draw it.
//
//darwin:replaypure
func (ws *Workspace) Detach(name string) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := ws.journalErrLocked(); err != nil {
		return err
	}
	if _, ok := ws.annotators[name]; !ok {
		return fmt.Errorf("workspace: %q: %w", name, ErrUnknownAnnotator)
	}
	ws.detachLocked(name)
	return ws.journalErrLocked()
}

// detachLocked removes a known annotator, releases their pending suggestion
// back to the pool and journals the detach. Callers hold ws.mu.
//
//darwin:replaypure
func (ws *Workspace) detachLocked(name string) {
	an := ws.annotators[name]
	if an.pending != nil {
		delete(ws.queried, an.pending.Key)
	}
	delete(ws.annotators, name)
	for i, n := range ws.annOrder {
		if n == name {
			ws.annOrder = append(ws.annOrder[:i], ws.annOrder[i+1:]...)
			break
		}
	}
	ws.applied("detach", detachData{Annotator: name})
}

// DetachIdle detaches every annotator whose last interaction predates
// cutoff, journaling each detach exactly like a client-issued one (replay
// and replication therefore reproduce the reclaim deterministically, with no
// clock dependence). It returns the detached names.
func (ws *Workspace) DetachIdle(cutoff time.Time) []string {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.journalErrLocked() != nil {
		return nil
	}
	var idle []string
	for _, name := range ws.annOrder {
		if ws.annotators[name].lastSeen.Before(cutoff) {
			idle = append(idle, name)
		}
	}
	for _, name := range idle {
		ws.detachLocked(name)
		wsAttachmentsExpired.Inc()
	}
	return idle
}

// HasAnnotator reports whether the named annotator is currently attached.
func (ws *Workspace) HasAnnotator(name string) bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	_, ok := ws.annotators[name]
	return ok
}

// applied records one applied state change: it journals the event (while
// ws.mu — and, for suggest, the index read lock — is held, so journal order
// equals apply order) and advances the event sequence. Callers hold ws.mu.
//
// The ws.log field value is installed by the manager and appends to the
// durable journal; the field indirection is invisible to static call-graph
// analysis, so this bridge carries the //darwin:journals contract manually.
//
//darwin:journals
//darwin:replaypure
func (ws *Workspace) applied(typ string, data any) {
	ws.eventSeq++
	wsEventsTotal.With(typ).Inc()
	if ws.log != nil {
		if err := ws.log(typ, data); err != nil && ws.logErr == nil {
			ws.logErr = err
		}
	}
}

// journalErrLocked reports the sticky journal failure, if any. Callers hold
// ws.mu; state-changing methods check it both on entry (refuse new work on
// a broken journal) and after applied (surface the failure that just
// happened instead of silently acknowledging undurable work).
func (ws *Workspace) journalErrLocked() error {
	if ws.logErr == nil {
		return nil
	}
	return fmt.Errorf("workspace %s: %w (restart the server to recover the journaled state): %v", ws.id, ErrJournal, ws.logErr)
}

// outstandingLocked counts suggestions assigned and not yet answered.
func (ws *Workspace) outstandingLocked() int {
	n := 0
	for _, an := range ws.annotators {
		if an.pending != nil {
			n++
		}
	}
	return n
}

// Suggest returns the annotator's pending suggestion, or assigns them the
// most promising unqueried, unassigned candidate rule. ok=false means no
// assignment is possible: the shared budget is exhausted (counting
// outstanding assignments, so the budget is never oversubscribed) or no
// candidates remain. The heavy work — regenerating the shared hierarchy
// when |P| or the index changed, and one benefit-kernel pass over the
// candidates — runs under the engine's read lock.
//
//darwin:replaypure
func (ws *Workspace) Suggest(name string) (Suggestion, bool, error) {
	//darwin:replaypure-exempt latency metric only; the observed duration never enters workspace state
	defer wsSuggestDurations.ObserveSince(time.Now())
	ws.mu.Lock()
	defer ws.mu.Unlock()
	an, ok := ws.annotators[name]
	if !ok {
		return Suggestion{}, false, fmt.Errorf("workspace: %q: %w", name, ErrUnknownAnnotator)
	}
	//darwin:replaypure-exempt lastSeen is TTL bookkeeping that never enters journaled or replayed state
	an.lastSeen = time.Now()
	if an.pending != nil {
		return *an.pending, true, nil
	}
	if err := ws.journalErrLocked(); err != nil {
		return Suggestion{}, false, err
	}
	if ws.questions+ws.outstandingLocked() >= ws.budget {
		return Suggestion{}, false, nil
	}
	var sug Suggestion
	var cov []int
	found := false
	ws.eng.WithIndexRead(func(ix *index.Index) {
		ws.growLocked()
		if ver := ix.Version(); ws.hier == nil || ws.hierPos != len(ws.positives) || ws.hierIxVer != ver {
			ws.hier = hierarchy.GenerateBits(ix, ws.posBits, ws.eng.HierarchyConfig())
			ws.hierPos = len(ws.positives)
			ws.hierIxVer = ver
			ws.hierGens++
		}
		key, benefit, newCov := ws.pickLocked()
		if key == "" {
			return
		}
		n := ws.hier.Node(key)
		cov = n.Coverage
		avg := 0.0
		if newCov > 0 {
			avg = benefit / float64(newCov)
		}
		rng := rand.New(rand.NewSource(mix(ws.seed, ws.eventSeq)))
		question := ws.questions + ws.outstandingLocked() + 1
		sug = Suggestion{
			Key:         key,
			Rule:        n.Heuristic.String(),
			Coverage:    len(cov),
			NewCoverage: newCov,
			Benefit:     benefit,
			AvgBenefit:  avg,
			SampleIDs:   oracle.SampleCoverage(cov, ws.eng.OracleSampleSize(), rng),
			Question:    question,
			BudgetLeft:  ws.budget - question,
		}
		ws.queried[key] = true
		an.pending = &sug
		an.pendingCov = cov
		found = true
		// Journal inside the read lock: a concurrent seed-rule
		// materialization (write lock) is journaled strictly before or
		// after this suggestion, matching what the hierarchy saw.
		ws.applied("suggest", suggestData{Annotator: name, Key: key})
	})
	if !found {
		return Suggestion{}, false, nil
	}
	return sug, true, ws.journalErrLocked()
}

// pickLocked is the deterministic candidate selection: the unqueried,
// unassigned hierarchy node with the highest benefit, breaking ties by
// higher new coverage then lexicographic key. Assigned-but-unanswered keys
// are in ws.queried, which is what keeps concurrent annotators disjoint.
//
//darwin:replaypure
func (ws *Workspace) pickLocked() (string, float64, int) {
	bestKey := ""
	bestBenefit := -1.0
	bestNew := -1
	for _, key := range ws.hier.NonRootKeys() {
		if ws.queried[key] {
			continue
		}
		n := ws.hier.Node(key)
		var benefit float64
		var newCov int
		if n.Bits != nil {
			benefit, newCov = n.Bits.AndNotSum(ws.posBits, ws.scores)
		} else {
			benefit = traversal.Benefit(n.Coverage, ws.positives, ws.scores)
			for _, id := range n.Coverage {
				if !ws.positives[id] {
					newCov++
				}
			}
		}
		if newCov == 0 {
			continue
		}
		if benefit > bestBenefit || (benefit == bestBenefit && newCov > bestNew) ||
			(benefit == bestBenefit && newCov == bestNew && (bestKey == "" || key < bestKey)) {
			bestKey, bestBenefit, bestNew = key, benefit, newCov
		}
	}
	return bestKey, bestBenefit, bestNew
}

// Answer records an annotator's verdict on their pending suggestion: on
// accept it merges the rule's coverage into the shared positive set and
// retrains the shared classifier; either way the rule stays queried for the
// whole workspace.
//
//darwin:replaypure
func (ws *Workspace) Answer(name, key string, accept bool) (Record, error) {
	//darwin:replaypure-exempt latency metric only; the observed duration never enters workspace state
	defer wsAnswerDurations.ObserveSince(time.Now())
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := ws.journalErrLocked(); err != nil {
		return Record{}, err
	}
	an, ok := ws.annotators[name]
	if !ok {
		return Record{}, fmt.Errorf("workspace: %q: %w", name, ErrUnknownAnnotator)
	}
	//darwin:replaypure-exempt lastSeen is TTL bookkeeping that never enters journaled or replayed state
	an.lastSeen = time.Now()
	if an.pending == nil {
		return Record{}, fmt.Errorf("workspace: annotator %q: %w", name, ErrNoPending)
	}
	if an.pending.Key != key {
		return Record{}, fmt.Errorf("workspace: answer for %q vs pending %q: %w", key, an.pending.Key, ErrKeyMismatch)
	}
	pending, cov := an.pending, an.pendingCov
	an.pending, an.pendingCov = nil, nil

	q := ws.questions + 1
	rec := Record{
		RuleRecord: core.RuleRecord{
			Question: q,
			Key:      key,
			Rule:     pending.Rule,
			Coverage: len(cov),
			Accepted: accept,
		},
		Annotator: name,
	}
	if accept {
		rec.CoverageIDs = append([]int(nil), cov...)
		rec.AddedIDs = ws.addPositives(cov)
		ws.accepted = append(ws.accepted, rec)
		ws.retrain()
	}
	rec.PositivesAfter = len(ws.positives)
	ws.history = append(ws.history, rec)
	ws.questions = q
	an.questions++
	if accept {
		an.accepts++
	}
	ws.applied("answer", answerData{Annotator: name, Key: key, Accept: accept})
	ws.publishStatsLocked()
	return rec, ws.journalErrLocked()
}

// HierarchyGenerations returns how many times the shared hierarchy was
// regenerated — with the shared cache this is once per positive-set change
// (plus index growth), regardless of how many annotators are stepping.
func (ws *Workspace) HierarchyGenerations() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.hierGens
}

// Stats returns the workspace's cheap status counters (questions answered,
// |P|, done) without copying the full report — the serving layer's list and
// status endpoints poll this per labeler. It reads the cached snapshot of
// the last applied state change, never ws.mu: a monitoring poll must not
// stall behind an in-flight shared suggest holding the workspace lock.
func (ws *Workspace) Stats() (questions, positives int, done bool) {
	snap := ws.statsSnap.Load()
	return snap.questions, snap.positives, snap.questions >= ws.budget
}

// Annotators returns the attached annotator names in attach order — what the
// serving layer re-adopts as labelers after journal recovery.
func (ws *Workspace) Annotators() []string {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return append([]string(nil), ws.annOrder...)
}

// PositivesMap returns a copy of the shared positive set.
func (ws *Workspace) PositivesMap() map[int]bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	out := make(map[int]bool, len(ws.positives))
	for id := range ws.positives {
		out[id] = true
	}
	return out
}

// AnnotatorReport summarizes one attached annotator.
type AnnotatorReport struct {
	Name      string
	Questions int
	Accepts   int
	// PendingKey is the key of the suggestion assigned and not yet
	// answered ("" if none).
	PendingKey string
}

// ClassifierMetrics summarizes the shared classifier's state, derived
// deterministically from the score vector.
type ClassifierMetrics struct {
	// Trained reports whether the classifier currently holds a fitted model.
	// It survives snapshot recovery: Restore refits the model from the
	// persisted (positives, seed, last retrain sequence) triple.
	Trained            bool
	Retrains           int
	MeanScore          float64
	PredictedPositives int // sentences with p_s >= 0.5
}

// Report is a deterministic snapshot of the shared discovery state: equal
// event sequences yield equal reports (no wall-clock fields, and no
// process-local counters like HierarchyGenerations — a regeneration can
// happen on a suggest that assigns nothing, which journals no event), which
// is what the crash-recovery tests compare.
type Report struct {
	ID            string
	Dataset       string
	Budget        int
	Questions     int
	Done          bool
	PositiveCount int
	Positives     []int
	Accepted      []Record
	History       []Record
	Annotators    []AnnotatorReport
	Classifier    ClassifierMetrics
	EventSeq      uint64
}

// Report snapshots the workspace. The record slices are copied, so the
// snapshot stays stable while the workspace keeps running.
func (ws *Workspace) Report() *Report {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	rep := &Report{
		ID:            ws.id,
		Dataset:       ws.dataset,
		Budget:        ws.budget,
		Questions:     ws.questions,
		Done:          ws.questions >= ws.budget,
		PositiveCount: len(ws.positives),
		Positives:     ws.positiveIDsLocked(),
		Accepted:      append([]Record(nil), ws.accepted...),
		History:       append([]Record(nil), ws.history...),
		Classifier:    ws.metricsLocked(),
		EventSeq:      ws.eventSeq,
	}
	for _, name := range ws.annOrder {
		an := ws.annotators[name]
		ar := AnnotatorReport{Name: an.name, Questions: an.questions, Accepts: an.accepts}
		if an.pending != nil {
			ar.PendingKey = an.pending.Key
		}
		rep.Annotators = append(rep.Annotators, ar)
	}
	return rep
}

func (ws *Workspace) positiveIDsLocked() []int {
	out := make([]int, 0, len(ws.positives))
	for id := range ws.positives {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func (ws *Workspace) metricsLocked() ClassifierMetrics {
	m := ClassifierMetrics{Trained: ws.clf.Trained(), Retrains: ws.retrains}
	sum := 0.0
	for _, s := range ws.scores {
		sum += s
		if s >= 0.5 {
			m.PredictedPositives++
		}
	}
	if len(ws.scores) > 0 {
		m.MeanScore = sum / float64(len(ws.scores))
	}
	return m
}
