// Package oracle implements the oracle abstraction of Definition 4: a
// function that, given a candidate heuristic and a few sample sentences from
// its coverage set, answers YES/NO — is the heuristic adequately precise?
//
// The package provides the perfect ground-truth oracle used to simulate
// annotators in the experiments (§4.1: answer YES iff at least 80% of the
// coverage set is positive), a noisy single-annotator oracle, and a
// crowd oracle that majority-votes several noisy annotators over small
// samples (reproducing the Figure-eight study of §4.5).
package oracle

import (
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/grammar"
)

// Query is one question posed to an oracle: a candidate heuristic, its full
// coverage set, and the sample of sentences that a human annotator would be
// shown (Figure 2 of the paper).
type Query struct {
	// Heuristic is the candidate labeling rule.
	Heuristic grammar.Heuristic
	// Coverage is the full set of sentence IDs matching the rule.
	Coverage []int
	// Samples is the subset of Coverage shown to the annotator.
	Samples []int
}

// Oracle answers queries about candidate heuristics.
type Oracle interface {
	// Answer returns true if the heuristic is judged adequately precise.
	Answer(q Query) bool
}

// DefaultPrecisionThreshold is the precision at which annotators empirically
// accept a rule (§2: "users label a heuristic as precise only when the
// heuristic has precision at least 0.8").
const DefaultPrecisionThreshold = 0.8

// DefaultSampleSize is the number of example sentences shown per query
// (Figure 2 shows 5).
const DefaultSampleSize = 5

// GroundTruth is a perfect oracle: it answers YES iff the precision of the
// full coverage set against the corpus's gold labels is at least Threshold.
type GroundTruth struct {
	Corpus    *corpus.Corpus
	Threshold float64
}

// NewGroundTruth returns a perfect oracle with the default 0.8 threshold.
func NewGroundTruth(c *corpus.Corpus) *GroundTruth {
	return &GroundTruth{Corpus: c, Threshold: DefaultPrecisionThreshold}
}

// Answer implements Oracle.
func (o *GroundTruth) Answer(q Query) bool {
	if len(q.Coverage) == 0 {
		return false
	}
	thr := o.Threshold
	if thr <= 0 {
		thr = DefaultPrecisionThreshold
	}
	pos := 0
	for _, id := range q.Coverage {
		if s := o.Corpus.Sentence(id); s != nil && s.Gold == corpus.Positive {
			pos++
		}
	}
	return float64(pos)/float64(len(q.Coverage)) >= thr
}

// Noisy wraps another oracle and flips its answer with probability FlipRate,
// modeling a single imperfect annotator.
type Noisy struct {
	Inner    Oracle
	FlipRate float64
	rng      *rand.Rand
}

// NewNoisy returns a noisy oracle with the given flip rate and seed.
func NewNoisy(inner Oracle, flipRate float64, seed int64) *Noisy {
	return &Noisy{Inner: inner, FlipRate: flipRate, rng: rand.New(rand.NewSource(seed))}
}

// Answer implements Oracle.
func (o *Noisy) Answer(q Query) bool {
	ans := o.Inner.Answer(q)
	if o.rng.Float64() < o.FlipRate {
		return !ans
	}
	return ans
}

// Crowd simulates the §4.5 crowdsourcing study: each of Votes annotators sees
// only the (small) sample of the rule's coverage, judges the rule precise if
// the sample precision is at least Threshold, and errs with probability
// FlipRate; the final answer is the majority vote. With few samples an
// imprecise rule can look precise by chance, which is exactly the failure
// mode observed in the paper.
type Crowd struct {
	Corpus    *corpus.Corpus
	Votes     int
	Threshold float64
	FlipRate  float64
	rng       *rand.Rand
}

// NewCrowd returns a crowd oracle with the paper's protocol: 3 votes, 0.8
// threshold.
func NewCrowd(c *corpus.Corpus, flipRate float64, seed int64) *Crowd {
	return &Crowd{
		Corpus:    c,
		Votes:     3,
		Threshold: DefaultPrecisionThreshold,
		FlipRate:  flipRate,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Answer implements Oracle.
func (o *Crowd) Answer(q Query) bool {
	sample := q.Samples
	if len(sample) == 0 {
		sample = q.Coverage
	}
	if len(sample) == 0 {
		return false
	}
	votes := o.Votes
	if votes <= 0 {
		votes = 3
	}
	thr := o.Threshold
	if thr <= 0 {
		thr = DefaultPrecisionThreshold
	}
	yes := 0
	for v := 0; v < votes; v++ {
		pos := 0
		for _, id := range sample {
			if s := o.Corpus.Sentence(id); s != nil && s.Gold == corpus.Positive {
				pos++
			}
		}
		vote := float64(pos)/float64(len(sample)) >= thr
		if o.rng.Float64() < o.FlipRate {
			vote = !vote
		}
		if vote {
			yes++
		}
	}
	return yes*2 > votes
}

// Recording wraps an oracle and records every query and answer, for the
// qualitative traversal analysis of Figure 11 and for annotator-cost
// accounting.
type Recording struct {
	Inner   Oracle
	Queries []RecordedQuery
}

// RecordedQuery is one recorded (query, answer) pair.
type RecordedQuery struct {
	Rule     string
	Coverage int
	Answer   bool
}

// NewRecording wraps an oracle.
func NewRecording(inner Oracle) *Recording {
	return &Recording{Inner: inner}
}

// Answer implements Oracle.
func (o *Recording) Answer(q Query) bool {
	ans := o.Inner.Answer(q)
	rule := ""
	if q.Heuristic != nil {
		rule = q.Heuristic.String()
	}
	o.Queries = append(o.Queries, RecordedQuery{Rule: rule, Coverage: len(q.Coverage), Answer: ans})
	return ans
}

// Count returns the number of queries answered so far.
func (o *Recording) Count() int { return len(o.Queries) }

// SampleCoverage draws up to n sample sentence IDs from a coverage set using
// rng, for presentation to annotators.
func SampleCoverage(coverage []int, n int, rng *rand.Rand) []int {
	if n <= 0 {
		n = DefaultSampleSize
	}
	if len(coverage) <= n {
		out := make([]int, len(coverage))
		copy(out, coverage)
		return out
	}
	idx := rng.Perm(len(coverage))[:n]
	out := make([]int, n)
	for i, j := range idx {
		out[i] = coverage[j]
	}
	return out
}
