package oracle

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/tokensregex"
)

// buildCorpus returns a corpus where sentences 0-7 are positive and 8-9
// negative.
func buildCorpus() *corpus.Corpus {
	c := corpus.New("o", "t")
	for i := 0; i < 8; i++ {
		c.Add("shuttle to the airport", corpus.Positive)
	}
	c.Add("order a pizza", corpus.Negative)
	c.Add("wifi password please", corpus.Negative)
	c.Preprocess(corpus.PreprocessOptions{})
	return c
}

func ruleQuery(coverage []int) Query {
	h := tokensregex.NewHeuristic([]string{"shuttle"})
	return Query{Heuristic: h, Coverage: coverage}
}

func TestGroundTruthThreshold(t *testing.T) {
	c := buildCorpus()
	o := NewGroundTruth(c)
	// 100% precise.
	if !o.Answer(ruleQuery([]int{0, 1, 2, 3})) {
		t.Error("precise rule rejected")
	}
	// Exactly 80% precise (4 pos, 1 neg): accepted.
	if !o.Answer(ruleQuery([]int{0, 1, 2, 3, 8})) {
		t.Error("rule at exactly the threshold rejected")
	}
	// 50% precise: rejected.
	if o.Answer(ruleQuery([]int{0, 1, 8, 9})) {
		t.Error("noisy rule accepted")
	}
	// Empty coverage: rejected.
	if o.Answer(ruleQuery(nil)) {
		t.Error("empty-coverage rule accepted")
	}
	// Out-of-range IDs are ignored (count as absent, lowering precision).
	if o.Answer(ruleQuery([]int{0, 999, 998, 997, 996})) {
		t.Error("rule with mostly dangling IDs accepted")
	}
	// Zero threshold falls back to the default.
	o2 := &GroundTruth{Corpus: c}
	if o2.Answer(ruleQuery([]int{0, 8, 9})) {
		t.Error("default threshold not applied")
	}
}

func TestNoisyOracle(t *testing.T) {
	c := buildCorpus()
	base := NewGroundTruth(c)
	alwaysFlip := NewNoisy(base, 1.0, 1)
	if alwaysFlip.Answer(ruleQuery([]int{0, 1, 2})) {
		t.Error("flip rate 1.0 should invert YES to NO")
	}
	neverFlip := NewNoisy(base, 0.0, 1)
	if !neverFlip.Answer(ruleQuery([]int{0, 1, 2})) {
		t.Error("flip rate 0.0 should preserve the answer")
	}
	// Statistical check: ~20% flips.
	some := NewNoisy(base, 0.2, 7)
	flips := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		if !some.Answer(ruleQuery([]int{0, 1, 2})) {
			flips++
		}
	}
	if flips < trials/10 || flips > trials/2 {
		t.Errorf("flip count %d out of expected range for rate 0.2", flips)
	}
}

func TestCrowdOracle(t *testing.T) {
	c := buildCorpus()
	o := NewCrowd(c, 0, 3)
	// Perfect sample of positives: YES.
	q := ruleQuery([]int{0, 1, 2, 3, 8})
	q.Samples = []int{0, 1, 2, 3, 4}
	if !o.Answer(q) {
		t.Error("crowd rejected a clean sample")
	}
	// Mostly-negative sample: NO.
	q.Samples = []int{8, 9, 0, 8, 9}
	if o.Answer(q) {
		t.Error("crowd accepted a dirty sample")
	}
	// The crowd can be fooled: full coverage is imprecise but the sample
	// happens to be clean — this is the §4.5 false-positive failure mode.
	q2 := ruleQuery([]int{0, 1, 8, 9, 9, 9})
	q2.Samples = []int{0, 1}
	if !o.Answer(q2) {
		t.Error("crowd with a lucky clean sample should say YES")
	}
	// Empty query: NO.
	if o.Answer(Query{}) {
		t.Error("crowd accepted an empty query")
	}
	// No samples provided: falls back to full coverage.
	q3 := ruleQuery([]int{0, 1, 2, 3})
	if !o.Answer(q3) {
		t.Error("crowd with no sample should use coverage")
	}
	// With a high flip rate the majority vote still often corrects a single
	// error; with flip rate 1.0 every vote is inverted.
	bad := &Crowd{Corpus: c, Votes: 3, Threshold: 0.8, FlipRate: 1.0, rng: rand.New(rand.NewSource(1))}
	if bad.Answer(q3) {
		t.Error("all-flipping crowd should say NO to a precise rule")
	}
}

func TestRecordingOracle(t *testing.T) {
	c := buildCorpus()
	rec := NewRecording(NewGroundTruth(c))
	rec.Answer(ruleQuery([]int{0, 1}))
	rec.Answer(ruleQuery([]int{8, 9}))
	rec.Answer(Query{Coverage: []int{0}}) // nil heuristic
	if rec.Count() != 3 {
		t.Fatalf("Count = %d", rec.Count())
	}
	if !rec.Queries[0].Answer || rec.Queries[1].Answer {
		t.Errorf("recorded answers wrong: %+v", rec.Queries)
	}
	if rec.Queries[0].Rule == "" {
		t.Error("rule string not recorded")
	}
	if rec.Queries[2].Rule != "" {
		t.Error("nil heuristic should record empty rule string")
	}
	if rec.Queries[0].Coverage != 2 {
		t.Errorf("coverage not recorded: %+v", rec.Queries[0])
	}
}

func TestSampleCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cov := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := SampleCoverage(cov, 5, rng)
	if len(s) != 5 {
		t.Fatalf("sample size = %d", len(s))
	}
	seen := map[int]bool{}
	for _, id := range s {
		if seen[id] {
			t.Error("duplicate in sample")
		}
		seen[id] = true
		found := false
		for _, c := range cov {
			if c == id {
				found = true
			}
		}
		if !found {
			t.Errorf("sampled id %d not in coverage", id)
		}
	}
	// Small coverage returns everything.
	small := SampleCoverage([]int{1, 2}, 5, rng)
	if len(small) != 2 {
		t.Errorf("small sample = %v", small)
	}
	// Default size.
	if got := SampleCoverage(cov, 0, rng); len(got) != DefaultSampleSize {
		t.Errorf("default sample size = %d", len(got))
	}
}
