package datagen

// This file defines the five dataset specifications mirroring Table 1 of the
// paper. Sizes and positive rates match the paper; the professions dataset
// defaults to 100K sentences (the paper's 1M is reachable via the scale
// parameter of ByName or the datagen CLI).

// commonSlots contains slot fillers shared by several datasets.
func commonSlots() map[string][]string {
	return map[string][]string{
		"place": {
			"the airport", "SFO airport", "the hotel", "downtown", "the station",
			"the convention center", "union square", "the pier", "the beach",
			"the ferry building", "the stadium", "the mall", "the museum",
			"oakland", "the city center", "terminal 2", "the train station",
			"golden gate park", "the wharf", "chinatown",
		},
		"place2": {
			"the hotel", "the airport", "downtown", "the office", "the station",
			"union square", "the conference", "the pier", "my room",
		},
		"food": {
			"pizza", "sushi", "tacos", "ramen", "a burger", "pasta", "dumplings",
			"pho", "fried chicken", "pancakes", "a burrito", "ice cream",
			"thai food", "bbq", "noodles", "wings", "curry", "salad",
		},
		"time": {
			"tonight", "this morning", "at noon", "after the meeting", "tomorrow",
			"this weekend", "right now", "later today", "at 6", "before my flight",
		},
		"person": {
			"John Miller", "Sarah Chen", "David Brown", "Maria Garcia",
			"James Wilson", "Linda Johnson", "Robert Davis", "Karen Lopez",
			"Michael Lee", "Susan Clark", "Thomas Wright", "Nancy Hall",
			"Peter Novak", "Elena Petrova", "Ahmed Hassan", "Yuki Tanaka",
		},
		"city": {
			"Boston", "Seattle", "Austin", "Denver", "Chicago", "Portland",
			"Atlanta", "Phoenix", "Toronto", "Berlin", "Madrid", "Lyon",
		},
		"year": {
			"1985", "1992", "2003", "2010", "1978", "1999", "2015", "1964",
			"2018", "1951",
		},
		"company": {
			"a startup", "the hospital", "a law firm", "the school district",
			"a consultancy", "the national lab", "a construction firm",
			"the city clinic",
		},
	}
}

func mergeSlots(dst, src map[string][]string) map[string][]string {
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// DirectionsSpec returns the spec for the directions dataset: hotel-guest
// questions where positives ask for directions or transportation between
// locations (Example 1 and Table 1: 15.3K sentences, 3.8% positive).
func DirectionsSpec() Spec {
	slots := mergeSlots(commonSlots(), map[string][]string{
		"transport": {"taxi", "cab", "car service", "rideshare"},
		"amenity":   {"the pool", "the gym", "the spa", "the rooftop bar", "the lounge", "the business center"},
		"item":      {"towels", "pillows", "a toothbrush", "an iron", "a hair dryer", "extra blankets", "a crib"},
		"meal":      {"breakfast", "dinner", "lunch", "room service", "brunch"},
	})
	return Spec{
		Name:         "directions",
		Task:         "Intents",
		NumSentences: 15300,
		PositiveRate: 0.038,
		Slots:        slots,
		PositiveClusters: []Cluster{
			{Name: "best-way", Weight: 3, Templates: []Template{
				{Pattern: "What is the best way to get to {place}?"},
				{Pattern: "What is the best way to get from {place} to {place2}?"},
				{Pattern: "What would be the fastest way to get to {place}?"},
				{Pattern: "Is driving the best way to get to {place}?"},
			}},
			{Name: "shuttle", Weight: 2, Templates: []Template{
				{Pattern: "Is there a shuttle to {place}?"},
				{Pattern: "Does the hotel run a shuttle to {place}?"},
				{Pattern: "What time does the shuttle to the airport leave?"},
				{Pattern: "Can I book the shuttle to {place} for {time}?"},
				{Pattern: "Is the shuttle to the hotel free?"},
			}},
			{Name: "bart", Weight: 1.5, Templates: []Template{
				{Pattern: "Is there a bart from SFO to the hotel?"},
				{Pattern: "Which bart line goes to {place}?"},
				{Pattern: "How long does the bart take to {place}?"},
				{Pattern: "Where is the closest bart station to the hotel?"},
			}},
			{Name: "uber-taxi", Weight: 2, Templates: []Template{
				{Pattern: "Is Uber the fastest way to get to {place}?"},
				{Pattern: "How much is a {transport} to {place}?"},
				{Pattern: "Should I take a {transport} or the train to {place}?"},
				{Pattern: "Can you call me a {transport} to {place} for {time}?"},
			}},
			{Name: "bus-transit", Weight: 1.5, Templates: []Template{
				{Pattern: "Which bus goes to {place}?"},
				{Pattern: "Is there public transport to {place} from the hotel?"},
				{Pattern: "Does the 38 bus stop near {place}?"},
				{Pattern: "How often does the train to {place} run?"},
			}},
			{Name: "walking-directions", Weight: 1.5, Templates: []Template{
				{Pattern: "How do I get from {place} to {place2}?"},
				{Pattern: "Can you give me directions to {place}?"},
				{Pattern: "Is {place} within walking distance from the hotel?"},
				{Pattern: "How far is {place} from here?"},
			}},
		},
		NegativeClusters: []Cluster{
			{Name: "food-order", Weight: 2, Templates: []Template{
				{Pattern: "What is the best way to order food from you?"},
				{Pattern: "Would Uber Eats be the fastest way to order?"},
				{Pattern: "Can I order {food} to my room {time}?"},
				{Pattern: "What time does {meal} start?"},
				{Pattern: "Is {meal} included with my room?"},
			}},
			{Name: "check-in", Weight: 2, Templates: []Template{
				{Pattern: "What is the best way to check in there?"},
				{Pattern: "Can I get a late checkout {time}?"},
				{Pattern: "Is early check in available?"},
				{Pattern: "Can you hold my bags after checkout?"},
			}},
			{Name: "amenities", Weight: 2, Templates: []Template{
				{Pattern: "What time does {amenity} open?"},
				{Pattern: "Is {amenity} open {time}?"},
				{Pattern: "Do I need a reservation for {amenity}?"},
				{Pattern: "Where is {amenity} located in the hotel?"},
			}},
			{Name: "housekeeping", Weight: 2, Templates: []Template{
				{Pattern: "Could you send {item} to my room?"},
				{Pattern: "Can housekeeping bring {item} {time}?"},
				{Pattern: "The air conditioning in my room is not working."},
				{Pattern: "My room has not been cleaned yet."},
			}},
			{Name: "wifi-misc", Weight: 2, Templates: []Template{
				{Pattern: "What is the wifi password?"},
				{Pattern: "Is parking included with the room?"},
				{Pattern: "Do you have a recommendation for {food} nearby?"},
				{Pattern: "Can I add another night to my reservation?"},
				{Pattern: "Is there a charge for the minibar?"},
				{Pattern: "Can you recommend a good restaurant for {meal}?"},
			}},
		},
	}
}

// MusiciansSpec returns the spec for the musicians dataset: Wikipedia-style
// sentences where positives mention a musician (Table 1: 15.8K, 10%).
func MusiciansSpec() Spec {
	slots := mergeSlots(commonSlots(), map[string][]string{
		"musician": {
			"Beethoven", "Mozart", "Chopin", "Brahms", "Liszt", "Schubert",
			"Verdi", "Wagner", "Dvorak", "Mahler", "Debussy", "Ravel",
			"Armstrong", "Ellington", "Coltrane", "Davis", "Parker",
			"Holiday", "Fitzgerald", "Hendrix", "Dylan", "Lennon",
		},
		"instrument":  {"piano", "violin", "cello", "guitar", "trumpet", "saxophone", "flute", "organ", "drums"},
		"band":        {"the Silver Owls", "the River Band", "Quartet Nine", "the Night Express", "Blue Harbor", "the Paper Lions"},
		"album":       {"Northern Lights", "Midnight Garden", "Glass River", "Hollow Moon", "Golden Hour", "Stone and Sky"},
		"era":         {"classical", "romantic", "baroque", "jazz", "modern"},
		"profession2": {"painter", "sculptor", "novelist", "architect", "philosopher", "chemist", "astronomer", "general", "senator"},
		"artwork":     {"a celebrated fresco", "a marble statue", "an acclaimed novel", "a suspension bridge", "a famous treatise"},
		"sport":       {"marathon", "championship", "tournament", "grand prix", "regatta"},
	})
	return Spec{
		Name:         "musicians",
		Task:         "Entities",
		NumSentences: 15800,
		PositiveRate: 0.10,
		Slots:        slots,
		PositiveClusters: []Cluster{
			{Name: "composer", Weight: 3, Templates: []Template{
				{Pattern: "{musician} was a renowned composer of the {era} era."},
				{Pattern: "{musician} is regarded as the greatest composer of his generation."},
				{Pattern: "As a composer, {musician} wrote more than forty works for orchestra."},
				{Pattern: "{musician} worked as a composer and conductor in {city}."},
			}},
			{Name: "piano", Weight: 2, Templates: []Template{
				{Pattern: "{musician} taught piano to the daughters of a wealthy family in {city}."},
				{Pattern: "{musician} began playing the piano at the age of five."},
				{Pattern: "{musician} gave his first piano recital in {year}."},
				{Pattern: "The piano concerto by {musician} premiered in {city} in {year}."},
			}},
			{Name: "instrument", Weight: 2, Templates: []Template{
				{Pattern: "{musician} played the {instrument} in several ensembles."},
				{Pattern: "{musician} was celebrated for his virtuosity on the {instrument}."},
				{Pattern: "{musician} studied the {instrument} at the conservatory in {city}."},
			}},
			{Name: "singer-band", Weight: 2, Templates: []Template{
				{Pattern: "{musician} was the lead singer of {band}."},
				{Pattern: "{musician} founded {band} in {year}."},
				{Pattern: "{musician} toured with {band} across Europe in {year}."},
			}},
			{Name: "album-song", Weight: 2, Templates: []Template{
				{Pattern: "{musician} released the album {album} in {year}."},
				{Pattern: "The album {album} established {musician} as a leading voice in {era} music."},
				{Pattern: "{musician} recorded the song for the album {album}."},
			}},
			{Name: "symphony", Weight: 1.5, Templates: []Template{
				{Pattern: "{musician} composed his first symphony in {year}."},
				{Pattern: "The ninth symphony of {musician} was performed in {city}."},
				{Pattern: "{musician} conducted the symphony orchestra of {city} for a decade."},
			}},
		},
		NegativeClusters: []Cluster{
			{Name: "other-professions", Weight: 3, Templates: []Template{
				{Pattern: "{person} was a celebrated {profession2} who lived in {city}."},
				{Pattern: "{person} created {artwork} in {year}."},
				{Pattern: "As a {profession2}, {person} influenced an entire generation."},
			}},
			{Name: "places", Weight: 2, Templates: []Template{
				{Pattern: "{city} is known for its historic old town and riverside parks."},
				{Pattern: "The population of {city} grew rapidly after {year}."},
				{Pattern: "The university of {city} was founded in {year}."},
			}},
			{Name: "sports", Weight: 2, Templates: []Template{
				{Pattern: "{person} won the {sport} in {year}."},
				{Pattern: "The {sport} of {year} was held in {city}."},
				{Pattern: "{person} retired from professional cycling in {year}."},
			}},
			{Name: "science-politics", Weight: 2, Templates: []Template{
				{Pattern: "{person} published a influential paper on plant genetics in {year}."},
				{Pattern: "{person} served as mayor of {city} for two terms."},
				{Pattern: "The treaty was signed in {city} in {year}."},
				{Pattern: "{person} discovered a new species of beetle in {year}."},
			}},
		},
	}
}

// CauseEffectSpec returns the spec for the cause-effect relation extraction
// dataset (Table 1: 10.7K, 12.2%).
func CauseEffectSpec() Spec {
	slots := mergeSlots(commonSlots(), map[string][]string{
		"event": {
			"the flooding", "the outage", "the crash", "the fire", "the delay",
			"the epidemic", "the protest", "the shortage", "the collapse",
			"the accident", "the blackout", "the famine", "the landslide",
		},
		"cause": {
			"heavy rainfall", "a software bug", "driver fatigue", "a gas leak",
			"the storm", "a faulty valve", "poor maintenance", "the earthquake",
			"a cyber attack", "overheating", "human error", "the drought",
		},
		"entity": {
			"the company", "the city council", "the research team", "the committee",
			"the hospital", "the airline", "the factory", "the university",
		},
		"thing": {
			"a new policy", "the quarterly report", "a museum exhibit",
			"the annual festival", "a community garden", "the bridge renovation",
			"a training program", "the art collection",
		},
	})
	return Spec{
		Name:         "cause-effect",
		Task:         "Relations",
		NumSentences: 10700,
		PositiveRate: 0.122,
		Slots:        slots,
		PositiveClusters: []Cluster{
			{Name: "caused-by", Weight: 3, Templates: []Template{
				{Pattern: "{event} was caused by {cause}."},
				{Pattern: "Investigators concluded that {event} has been caused by {cause}."},
				{Pattern: "{event} appears to have been caused by {cause}."},
			}},
			{Name: "resulted-in", Weight: 2, Templates: []Template{
				{Pattern: "{cause} resulted in {event} across the region."},
				{Pattern: "The report says {cause} resulted in {event}."},
			}},
			{Name: "led-to", Weight: 2, Templates: []Template{
				{Pattern: "{cause} led to {event} last winter."},
				{Pattern: "Experts believe {cause} led to {event}."},
			}},
			{Name: "triggered-by", Weight: 2, Templates: []Template{
				{Pattern: "{event} was triggered by {cause}."},
				{Pattern: "{event}, triggered by {cause}, lasted for three days."},
			}},
			{Name: "due-to", Weight: 1.5, Templates: []Template{
				{Pattern: "{event} occurred due to {cause}."},
				{Pattern: "Officials attributed {event} to {cause}."},
			}},
			{Name: "because-of", Weight: 1.5, Templates: []Template{
				{Pattern: "{event} happened because of {cause}."},
				{Pattern: "Thousands were displaced because {cause} brought {event}."},
			}},
		},
		NegativeClusters: []Cluster{
			{Name: "announcements", Weight: 3, Templates: []Template{
				{Pattern: "{entity} announced {thing} on Monday."},
				{Pattern: "{entity} will present {thing} in {city} next month."},
				{Pattern: "{entity} published the schedule for {thing}."},
			}},
			{Name: "descriptions", Weight: 3, Templates: []Template{
				{Pattern: "{event} was widely covered by local media."},
				{Pattern: "{event} remained the main topic of conversation in {city}."},
				{Pattern: "Residents described {event} as unprecedented."},
				{Pattern: "{cause} was recorded across the valley in {year}."},
			}},
			{Name: "by-noncausal", Weight: 2, Templates: []Template{
				{Pattern: "The book about {event} was written by {person}."},
				{Pattern: "The inspection was carried out by {entity}."},
				{Pattern: "The photograph of {event} was taken by {person}."},
			}},
			{Name: "misc", Weight: 2, Templates: []Template{
				{Pattern: "{person} joined {entity} as an adviser in {year}."},
				{Pattern: "{entity} operates three facilities near {city}."},
				{Pattern: "{thing} opens to the public {time}."},
			}},
		},
	}
}

// ProfessionsSpec returns the spec for the professions dataset: web sentences
// where positives mention a profession (Table 1: 1M sentences, 1.1%
// positive). The default NumSentences is 100K; use a scale of 10 with ByName
// to reach the paper's full 1M.
func ProfessionsSpec() Spec {
	slots := mergeSlots(commonSlots(), map[string][]string{
		"profession": {
			"scientist", "teacher", "engineer", "doctor", "lawyer", "nurse",
			"architect", "accountant", "journalist", "electrician", "plumber",
			"pharmacist", "surgeon", "librarian", "translator", "chef",
			"firefighter", "carpenter", "economist", "dentist",
		},
		"company":  {"a startup", "the hospital", "a law firm", "the school district", "a consultancy", "the national lab", "a construction firm", "the city clinic"},
		"product":  {"a new phone", "the latest update", "a board game", "a documentary", "the garden furniture", "a cookbook", "an exhibition", "a mobile app"},
		"weathery": {"sunny", "rainy", "windy", "mild", "freezing", "humid"},
		"hobby":    {"hiking", "photography", "gardening", "chess", "baking", "birdwatching", "sailing"},
	})
	return Spec{
		Name:         "professions",
		Task:         "Entities",
		NumSentences: 100000,
		PositiveRate: 0.011,
		Slots:        slots,
		PositiveClusters: []Cluster{
			{Name: "works-as", Weight: 3, Templates: []Template{
				{Pattern: "{person} works as a {profession} in {city}."},
				{Pattern: "{person} has worked as a {profession} at {company} for ten years."},
				{Pattern: "{person} worked as a {profession} before moving to {city}."},
			}},
			{Name: "is-a", Weight: 3, Templates: []Template{
				{Pattern: "{person} is a {profession} whose job takes them all over {city}."},
				{Pattern: "{person} is a licensed {profession} at {company}."},
				{Pattern: "My neighbor is a {profession} and loves the job."},
			}},
			{Name: "job-title", Weight: 2, Templates: []Template{
				{Pattern: "The job posting seeks an experienced {profession} for {company}."},
				{Pattern: "{company} hired {person} as their new {profession} in {year}."},
				{Pattern: "After graduating, {person} took a job as a {profession}."},
			}},
			{Name: "career", Weight: 2, Templates: []Template{
				{Pattern: "{person} built a long career as a {profession} in {city}."},
				{Pattern: "Becoming a {profession} requires years of training."},
				{Pattern: "{person} retired after thirty years as a {profession}."},
			}},
		},
		NegativeClusters: []Cluster{
			{Name: "weather", Weight: 2, Templates: []Template{
				{Pattern: "The weather in {city} stayed {weathery} all week."},
				{Pattern: "Forecasters expect a {weathery} weekend in {city}."},
			}},
			{Name: "reviews", Weight: 3, Templates: []Template{
				{Pattern: "I bought {product} last month and it works great."},
				{Pattern: "The review called {product} overpriced but well built."},
				{Pattern: "{product} ships from {city} within two days."},
			}},
			{Name: "hobbies", Weight: 2, Templates: []Template{
				{Pattern: "{person} spends weekends {hobby} near {city}."},
				{Pattern: "{hobby} has become popular in {city} since {year}."},
			}},
			{Name: "travel-news", Weight: 3, Templates: []Template{
				{Pattern: "The flight from {city} to {place} was delayed {time}."},
				{Pattern: "{city} opened a new park along the river in {year}."},
				{Pattern: "{person} visited {city} for the first time in {year}."},
				{Pattern: "The festival in {city} drew record crowds in {year}."},
			}},
			{Name: "generic-web", Weight: 3, Templates: []Template{
				{Pattern: "Click here to read the full article about {product}."},
				{Pattern: "Sign up for our newsletter to get updates {time}."},
				{Pattern: "The recipe serves four and takes thirty minutes."},
				{Pattern: "Prices may vary depending on location and season."},
			}},
		},
	}
}

// TweetsSpec returns the spec for the tweets dataset with the Food intent as
// the positive class (Table 1: 2130 tweets, 11.4% positive).
func TweetsSpec() Spec {
	slots := mergeSlots(commonSlots(), map[string][]string{
		"feeling":  {"so", "seriously", "really", "low key", "honestly"},
		"jobword":  {"interview", "resume", "internship", "promotion", "new job", "career fair"},
		"tripword": {"road trip", "flight", "vacation", "weekend getaway", "camping trip", "cruise"},
		"show":     {"the game", "the new episode", "that movie", "the finale", "the concert"},
	})
	return Spec{
		Name:         "tweets",
		Task:         "(Food) Intents",
		NumSentences: 2130,
		PositiveRate: 0.114,
		Slots:        slots,
		PositiveClusters: []Cluster{
			{Name: "craving", Weight: 3, Templates: []Template{
				{Pattern: "{feeling} craving {food} {time}"},
				{Pattern: "I have been craving {food} all day"},
				{Pattern: "craving some {food} right now"},
			}},
			{Name: "want-to-eat", Weight: 2, Templates: []Template{
				{Pattern: "I just want to eat {food} {time}"},
				{Pattern: "anyone want to grab {food} {time}?"},
				{Pattern: "can we please go eat {food}"},
			}},
			{Name: "hungry", Weight: 2, Templates: []Template{
				{Pattern: "{feeling} hungry, thinking about {food}"},
				{Pattern: "so hungry I could eat {food} and more {food}"},
			}},
			{Name: "order-food", Weight: 1.5, Templates: []Template{
				{Pattern: "about to order {food} for dinner"},
				{Pattern: "ordering {food} again because why not"},
			}},
		},
		NegativeClusters: []Cluster{
			{Name: "travel", Weight: 2, Templates: []Template{
				{Pattern: "planning a {tripword} to {city} {time}"},
				{Pattern: "cannot wait for my {tripword} next month"},
				{Pattern: "booked the {tripword} to {city}!"},
			}},
			{Name: "career", Weight: 2, Templates: []Template{
				{Pattern: "got an {jobword} at {company} {time}"},
				{Pattern: "wish me luck for the {jobword} tomorrow"},
				{Pattern: "finally updated my {jobword}"},
			}},
			{Name: "entertainment", Weight: 2, Templates: []Template{
				{Pattern: "who else is watching {show} {time}?"},
				{Pattern: "{show} was unbelievable last night"},
				{Pattern: "still thinking about {show}"},
			}},
			{Name: "daily", Weight: 2, Templates: []Template{
				{Pattern: "monday mornings should be illegal"},
				{Pattern: "the gym was packed {time}"},
				{Pattern: "traffic on the bridge is terrible again"},
				{Pattern: "my phone battery died at the worst time"},
			}},
		},
	}
}
