// Package datagen generates the synthetic datasets used throughout the
// experiments. The paper evaluates on five real-world corpora (cause-effect,
// musicians, directions, professions, tweets) that are proprietary or require
// external resources (ClueWeb, NELL, Figure-eight annotations). This package
// substitutes seeded synthetic corpora with matched size, positive rate and —
// crucially — matched *rule structure*: each dataset's positive class is made
// up of several distinct pattern clusters (template families), so that
//
//   - precise labeling rules exist (phrases and parse-tree patterns),
//   - a small random seed usually misses entire clusters (the property the
//     Snuba comparison in Figures 7-8 depends on), and
//   - a biased seed can exclude all evidence for a specific cluster (the
//     "shuttle"/"composer" withholding experiment of Figure 8).
//
// All generation is deterministic given a seed.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
)

// Template is a sentence template. Placeholders of the form {slot} are
// replaced by a random filler from the Spec's slot table.
type Template struct {
	// Pattern is the template text, e.g. "what is the best way to get to {place}".
	Pattern string
	// Weight is the relative sampling weight of this template inside its
	// cluster (default 1).
	Weight float64
}

// Cluster is a family of templates that share a discriminative pattern. For
// positive clusters the Name doubles as the cluster identifier used in
// reports ("shuttle", "bart", ...).
type Cluster struct {
	// Name identifies the cluster.
	Name string
	// Templates lists the sentence templates of the cluster.
	Templates []Template
	// Weight is the relative share of this cluster among its class.
	Weight float64
}

// Spec describes one synthetic dataset.
type Spec struct {
	// Name and Task are copied onto the generated corpus.
	Name string
	Task string
	// NumSentences is the total corpus size.
	NumSentences int
	// PositiveRate is the fraction of positive sentences.
	PositiveRate float64
	// PositiveClusters and NegativeClusters are the template families.
	PositiveClusters []Cluster
	NegativeClusters []Cluster
	// Slots maps slot names to filler lists.
	Slots map[string][]string
	// NoiseRate is the fraction of sentences whose label is flipped after
	// generation, modeling annotation noise in the source corpora. Default 0.
	NoiseRate float64
}

// Generate builds the corpus described by the spec using the given seed.
func Generate(spec Spec, seed int64) *corpus.Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := corpus.New(spec.Name, spec.Task)

	numPos := int(float64(spec.NumSentences)*spec.PositiveRate + 0.5)
	numNeg := spec.NumSentences - numPos

	type pending struct {
		text string
		gold corpus.Label
	}
	items := make([]pending, 0, spec.NumSentences)

	for i := 0; i < numPos; i++ {
		cl := pickCluster(spec.PositiveClusters, rng)
		items = append(items, pending{renderTemplate(pickTemplate(cl, rng), spec.Slots, rng), corpus.Positive})
	}
	for i := 0; i < numNeg; i++ {
		cl := pickCluster(spec.NegativeClusters, rng)
		items = append(items, pending{renderTemplate(pickTemplate(cl, rng), spec.Slots, rng), corpus.Negative})
	}

	// Shuffle so positives are not contiguous, then apply label noise.
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	for i := range items {
		if spec.NoiseRate > 0 && rng.Float64() < spec.NoiseRate {
			if items[i].gold == corpus.Positive {
				items[i].gold = corpus.Negative
			} else {
				items[i].gold = corpus.Positive
			}
		}
		c.Add(items[i].text, items[i].gold)
	}
	return c
}

func pickCluster(clusters []Cluster, rng *rand.Rand) Cluster {
	if len(clusters) == 0 {
		return Cluster{Templates: []Template{{Pattern: "empty"}}}
	}
	total := 0.0
	for _, cl := range clusters {
		w := cl.Weight
		if w <= 0 {
			w = 1
		}
		total += w
	}
	x := rng.Float64() * total
	for _, cl := range clusters {
		w := cl.Weight
		if w <= 0 {
			w = 1
		}
		if x < w {
			return cl
		}
		x -= w
	}
	return clusters[len(clusters)-1]
}

func pickTemplate(cl Cluster, rng *rand.Rand) Template {
	if len(cl.Templates) == 0 {
		return Template{Pattern: "empty"}
	}
	total := 0.0
	for _, t := range cl.Templates {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		total += w
	}
	x := rng.Float64() * total
	for _, t := range cl.Templates {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		if x < w {
			return t
		}
		x -= w
	}
	return cl.Templates[len(cl.Templates)-1]
}

// renderTemplate substitutes every {slot} placeholder with a random filler.
// Unknown slots are left verbatim (minus braces) so template bugs are visible
// in the generated text rather than causing a panic.
func renderTemplate(t Template, slots map[string][]string, rng *rand.Rand) string {
	out := t.Pattern
	for {
		start := strings.Index(out, "{")
		if start < 0 {
			break
		}
		end := strings.Index(out[start:], "}")
		if end < 0 {
			break
		}
		end += start
		slot := out[start+1 : end]
		fillers := slots[slot]
		var filler string
		if len(fillers) == 0 {
			filler = slot
		} else {
			filler = fillers[rng.Intn(len(fillers))]
		}
		out = out[:start] + filler + out[end+1:]
	}
	return out
}

// ByName generates one of the five paper datasets by name:
// "directions", "musicians", "cause-effect", "professions", "tweets".
// The scale parameter multiplies the dataset's default size (1.0 = Table 1
// size; the professions default is scaled down to 100K sentences and reaches
// the paper's 1M at scale 10). Returns an error for unknown names.
func ByName(name string, scale float64, seed int64) (*corpus.Corpus, error) {
	if scale <= 0 {
		scale = 1
	}
	var spec Spec
	switch strings.ToLower(name) {
	case "directions":
		spec = DirectionsSpec()
	case "musicians":
		spec = MusiciansSpec()
	case "cause-effect", "causeeffect", "cause_effect":
		spec = CauseEffectSpec()
	case "professions", "profession":
		spec = ProfessionsSpec()
	case "tweets", "food-tweets", "food_tweets":
		spec = TweetsSpec()
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
	spec.NumSentences = int(float64(spec.NumSentences) * scale)
	if spec.NumSentences < 10 {
		spec.NumSentences = 10
	}
	return Generate(spec, seed), nil
}

// AllDatasetNames lists the five datasets of Table 1 in paper order.
func AllDatasetNames() []string {
	return []string{"cause-effect", "musicians", "directions", "professions", "tweets"}
}
