package datagen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/corpus"
)

func TestGenerateSizesAndRates(t *testing.T) {
	tests := []struct {
		name     string
		spec     Spec
		wantSize int
		wantRate float64
	}{
		{"directions", DirectionsSpec(), 15300, 0.038},
		{"musicians", MusiciansSpec(), 15800, 0.10},
		{"cause-effect", CauseEffectSpec(), 10700, 0.122},
		{"tweets", TweetsSpec(), 2130, 0.114},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Generate(tt.spec, 42)
			if c.Len() != tt.wantSize {
				t.Errorf("size = %d, want %d", c.Len(), tt.wantSize)
			}
			rate := c.PositiveRate()
			if math.Abs(rate-tt.wantRate) > 0.005 {
				t.Errorf("positive rate = %.4f, want %.4f", rate, tt.wantRate)
			}
		})
	}
}

func TestGenerateProfessionsScaledDown(t *testing.T) {
	spec := ProfessionsSpec()
	spec.NumSentences = 5000
	c := Generate(spec, 1)
	if c.Len() != 5000 {
		t.Fatalf("size = %d", c.Len())
	}
	if math.Abs(c.PositiveRate()-0.011) > 0.003 {
		t.Errorf("positive rate = %.4f", c.PositiveRate())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := TweetsSpec()
	a := Generate(spec, 7)
	b := Generate(spec, 7)
	if a.Len() != b.Len() {
		t.Fatal("different sizes for same seed")
	}
	for i := range a.Sentences {
		if a.Sentences[i].Text != b.Sentences[i].Text || a.Sentences[i].Gold != b.Sentences[i].Gold {
			t.Fatalf("sentence %d differs for same seed", i)
		}
	}
	c := Generate(spec, 8)
	same := true
	for i := range a.Sentences {
		if a.Sentences[i].Text != c.Sentences[i].Text {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestNoUnfilledSlots(t *testing.T) {
	for _, name := range AllDatasetNames() {
		c, err := ByName(name, 0.05, 3)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		for _, s := range c.Sentences {
			if strings.ContainsAny(s.Text, "{}") {
				t.Errorf("%s: unfilled slot in %q", name, s.Text)
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 1, 1); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestByNameScale(t *testing.T) {
	c, err := ByName("tweets", 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1065 {
		t.Errorf("scaled size = %d, want 1065", c.Len())
	}
	// Tiny scale clamps to a floor of 10 sentences.
	c2, err := ByName("tweets", 0.0001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() < 10 {
		t.Errorf("floor not applied: %d", c2.Len())
	}
}

func TestDirectionsClusterDiversity(t *testing.T) {
	// The biased-seed experiment (Figure 8) requires that the "shuttle"
	// cluster exists and that plenty of positives do NOT mention shuttle.
	c, err := ByName("directions", 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	c.Preprocess(corpus.PreprocessOptions{})
	withShuttle, withoutShuttle := 0, 0
	for _, s := range c.Sentences {
		if s.Gold != corpus.Positive {
			continue
		}
		has := false
		for _, tok := range s.Tokens {
			if tok == "shuttle" {
				has = true
				break
			}
		}
		if has {
			withShuttle++
		} else {
			withoutShuttle++
		}
	}
	if withShuttle == 0 {
		t.Error("no positive mentions 'shuttle'")
	}
	if withoutShuttle == 0 {
		t.Error("all positives mention 'shuttle'")
	}
}

func TestMusiciansComposerCluster(t *testing.T) {
	c, err := ByName("musicians", 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	c.Preprocess(corpus.PreprocessOptions{})
	composerPos, composerNeg := 0, 0
	for _, s := range c.Sentences {
		for _, tok := range s.Tokens {
			if tok == "composer" {
				if s.Gold == corpus.Positive {
					composerPos++
				} else {
					composerNeg++
				}
				break
			}
		}
	}
	if composerPos == 0 {
		t.Error("'composer' never appears in positives")
	}
	// 'composer' should be a precise signal (>80% precision) so the oracle
	// accepts it as a rule.
	if composerNeg > composerPos/4 {
		t.Errorf("'composer' too noisy: %d pos vs %d neg", composerPos, composerNeg)
	}
}

func TestCauseEffectPatternPrecision(t *testing.T) {
	c, err := ByName("cause-effect", 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := 0, 0
	for _, s := range c.Sentences {
		if strings.Contains(strings.ToLower(s.Text), "caused by") {
			if s.Gold == corpus.Positive {
				pos++
			} else {
				neg++
			}
		}
	}
	if pos == 0 {
		t.Fatal("'caused by' never appears")
	}
	if float64(pos)/float64(pos+neg) < 0.8 {
		t.Errorf("'caused by' precision %.2f < 0.8", float64(pos)/float64(pos+neg))
	}
}

func TestNoiseRate(t *testing.T) {
	spec := TweetsSpec()
	spec.NoiseRate = 0.5
	noisy := Generate(spec, 3)
	clean := Generate(TweetsSpec(), 3)
	diff := 0
	for i := range clean.Sentences {
		if clean.Sentences[i].Gold != noisy.Sentences[i].Gold {
			diff++
		}
	}
	if diff == 0 {
		t.Error("NoiseRate had no effect")
	}
}

func TestRenderTemplateUnknownSlot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := renderTemplate(Template{Pattern: "hello {missing} world"}, map[string][]string{}, rng)
	if got != "hello missing world" {
		t.Errorf("renderTemplate = %q", got)
	}
}

func TestPickClusterEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cl := pickCluster(nil, rng)
	if len(cl.Templates) == 0 {
		t.Error("empty cluster fallback has no templates")
	}
	tm := pickTemplate(Cluster{}, rng)
	if tm.Pattern == "" {
		t.Error("empty template fallback")
	}
}
