package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// RequestIDHeader carries the request id between processes. The router
// forwards an incoming id unchanged to the owning shard, so one id names
// the whole fan-in path and grepping both daemons' logs for it yields the
// full trace.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds accepted client-supplied ids; anything longer (or
// empty) is replaced by a fresh id at the edge.
const maxRequestIDLen = 128

// ctxKey is the private context key type for request ids.
type ctxKey struct{}

// NewRequestID returns a fresh 16-byte random id in hex.
func NewRequestID() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero id beats a
		// panic in a logging path.
		return "0000000000000000"
	}
	return hex.EncodeToString(buf[:])
}

// WithRequestID returns a context carrying the id. The SDK client forwards
// it on outgoing requests via RequestIDHeader.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestIDFrom returns the request id carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// SanitizeRequestID validates a client-supplied id: printable ASCII, no
// spaces, at most maxRequestIDLen bytes. Invalid or empty ids return "".
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' {
			return ""
		}
	}
	return id
}
