package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// Instrument wraps next with the edge telemetry both daemons share: a
// request id (accepted from RequestIDHeader or minted here) placed in the
// request context and echoed in the response header, per-route/per-status
// request counters, a per-route latency histogram, an in-flight gauge, and
// one structured log line per request. It sits outside auth and rate
// limiting so 401s and 429s are counted too. logger may be nil to disable
// request logs (unit tests).
func Instrument(reg *Registry, daemon string, logger *slog.Logger, next http.Handler) http.Handler {
	requests := reg.CounterVec("darwin_http_requests_total",
		"HTTP requests served, by daemon, route pattern, method and status code.",
		"daemon", "route", "method", "status")
	durations := reg.HistogramVec("darwin_http_request_duration_seconds",
		"HTTP request latency in seconds, by daemon and route pattern.",
		LatencyBuckets, "daemon", "route")
	inFlight := reg.GaugeVec("darwin_http_in_flight_requests",
		"HTTP requests currently being served, by daemon.",
		"daemon").With(daemon)

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := SanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		// WithContext clones the request; ServeMux sets Pattern on the clone
		// it routes, so the route must be read from rr after next returns,
		// not from r.
		rr := r.WithContext(WithRequestID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		inFlight.Inc()
		next.ServeHTTP(sw, rr)
		inFlight.Dec()

		route := rr.Pattern
		if route == "" {
			route = "unrouted"
		}
		elapsed := time.Since(start)
		requests.With(daemon, route, r.Method, strconv.Itoa(sw.status)).Inc()
		durations.With(daemon, route).Observe(elapsed.Seconds())
		if logger != nil {
			logger.LogAttrs(rr.Context(), slog.LevelInfo, "http_request",
				slog.String("daemon", daemon),
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("duration_us", elapsed.Microseconds()),
				slog.String("request_id", id),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// statusWriter records the status code written by the handler (200 when the
// handler never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush passes through to the wrapped writer so streaming handlers (export)
// keep working.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
