package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. All methods are lock-free.
type Counter struct {
	n atomic.Uint64
}

func (*Counter) isMetric() {}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (callers pass non-negative deltas; counters only go up).
func (c *Counter) Add(n uint64) {
	if !Enabled() {
		return
	}
	c.n.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a value that can go up and down (float64, stored as bits so Set
// and Add stay lock-free).
type Gauge struct {
	bits atomic.Uint64
}

func (*Gauge) isMetric() {}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if !Enabled() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (negative to decrement) via a CAS loop.
func (g *Gauge) Add(d float64) {
	if !Enabled() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram of float64 observations (typically
// seconds). Observe is lock-free: one binary search plus four atomic adds.
// Snapshots and quantiles are computed from the bucket counts, matching
// Prometheus histogram_quantile semantics (linear interpolation within the
// bucket containing the target rank).
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit at the end
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Gauge // reuses the CAS-loop float accumulator
	last   atomic.Uint64
}

func (*Histogram) isMetric() {}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if !Enabled() {
		return
	}
	// SearchFloat64s returns the first i with bounds[i] >= v, which is
	// exactly the le-bucket the observation belongs to; v above every bound
	// lands at len(bounds), the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.last.Store(math.Float64bits(v))
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count uint64
	Sum   float64
	Last  float64
	P50   float64
	P95   float64
	P99   float64
}

// Snapshot summarizes the histogram. Under concurrent writers the numbers
// are approximate (buckets are read one atomic at a time), which is fine
// for monitoring.
func (h *Histogram) Snapshot() Snapshot {
	counts, total := h.readCounts()
	return Snapshot{
		Count: total,
		Sum:   h.sum.Value(),
		Last:  math.Float64frombits(h.last.Load()),
		P50:   quantile(h.bounds, counts, total, 0.50),
		P95:   quantile(h.bounds, counts, total, 0.95),
		P99:   quantile(h.bounds, counts, total, 0.99),
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) from the buckets.
func (h *Histogram) Quantile(q float64) float64 {
	counts, total := h.readCounts()
	return quantile(h.bounds, counts, total, q)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Last returns the most recent observation (zero before the first).
func (h *Histogram) Last() float64 { return math.Float64frombits(h.last.Load()) }

func (h *Histogram) readCounts() ([]uint64, uint64) {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total
}

// quantile walks the cumulative bucket counts to the target rank and
// interpolates linearly inside the bucket that contains it. Observations in
// the +Inf bucket are attributed to the highest finite bound (the standard
// histogram_quantile fallback).
func quantile(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i == len(bounds) {
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		return lower + (upper-lower)*(target-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

// LatencyBuckets are the default upper bounds (seconds) for request and
// step latency histograms: 100µs to 10s, roughly 2.5x apart, bracketing
// everything from a bitset probe to a cold hierarchy regeneration.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}
