package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestInstrumentRequestID checks the edge contract: a valid incoming
// X-Request-Id is kept (context + response header), an invalid or missing
// one is replaced with a fresh id.
func TestInstrumentRequestID(t *testing.T) {
	reg := NewRegistry()
	var seen string
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ping", func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
		w.WriteHeader(http.StatusNoContent)
	})
	h := Instrument(reg, "testd", nil, mux)

	req := httptest.NewRequest("GET", "/ping", nil)
	req.Header.Set(RequestIDHeader, "client-id-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "client-id-1" {
		t.Errorf("context id = %q, want client-id-1", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "client-id-1" {
		t.Errorf("echoed id = %q, want client-id-1", got)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/ping", nil))
	generated := rec.Header().Get(RequestIDHeader)
	if generated == "" || generated == "client-id-1" {
		t.Errorf("missing header must mint a fresh id, got %q", generated)
	}
	if seen != generated {
		t.Errorf("context id %q != response header %q", seen, generated)
	}

	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/ping", nil)
	req.Header.Set(RequestIDHeader, "bad id with spaces\x01")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got == "" || strings.Contains(got, " ") {
		t.Errorf("invalid incoming id must be replaced, got %q", got)
	}
}

// TestInstrumentMetrics checks the route pattern (read post-routing from
// the mux-mutated clone), the status label (including handler 404s), and
// the latency histogram.
func TestInstrumentMetrics(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/labelers/{id}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") == "missing" {
			http.Error(w, "nope", http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	})
	h := Instrument(reg, "testd", nil, mux)

	for _, path := range []string{"/v2/labelers/a", "/v2/labelers/b", "/v2/labelers/missing", "/unknown"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}

	requests := reg.CounterVec("darwin_http_requests_total", "", "daemon", "route", "method", "status")
	if got := requests.With("testd", "GET /v2/labelers/{id}", "GET", "200").Value(); got != 2 {
		t.Errorf("200s on route = %d, want 2", got)
	}
	if got := requests.With("testd", "GET /v2/labelers/{id}", "GET", "404").Value(); got != 1 {
		t.Errorf("404s on route = %d, want 1", got)
	}
	if got := requests.With("testd", "unrouted", "GET", "404").Value(); got != 1 {
		t.Errorf("unrouted 404s = %d, want 1", got)
	}
	durations := reg.HistogramVec("darwin_http_request_duration_seconds", "", LatencyBuckets, "daemon", "route")
	if got := durations.With("testd", "GET /v2/labelers/{id}").Count(); got != 3 {
		t.Errorf("histogram count = %d, want 3", got)
	}
	if got := reg.GaugeVec("darwin_http_in_flight_requests", "", "daemon").With("testd").Value(); got != 0 {
		t.Errorf("in-flight after quiesce = %v, want 0", got)
	}
}

// TestInstrumentLogs checks the structured request log carries the request
// id, route and status.
func TestInstrumentLogs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ping", func(w http.ResponseWriter, r *http.Request) {})
	h := Instrument(NewRegistry(), "testd", logger, mux)

	req := httptest.NewRequest("GET", "/ping", nil)
	req.Header.Set(RequestIDHeader, "trace-me-7")
	h.ServeHTTP(httptest.NewRecorder(), req)

	line := buf.String()
	for _, want := range []string{`"request_id":"trace-me-7"`, `"route":"GET /ping"`, `"status":200`, `"daemon":"testd"`} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %s:\n%s", want, line)
		}
	}
}
