package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestHistogramBuckets pins bucket assignment: an observation exactly on a
// bound lands in that bound's le bucket (cumulative semantics).
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.5, 0.9, 1, 7} {
		h.Observe(v)
	}
	counts, total := h.readCounts()
	if total != 7 {
		t.Fatalf("total = %d, want 7", total)
	}
	want := []uint64{2, 2, 2, 1} // le=0.1: {0.05, 0.1}; le=0.5: {0.3, 0.5}; le=1: {0.9, 1}; +Inf: {7}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if got := h.Count(); got != 7 {
		t.Errorf("Count() = %d, want 7", got)
	}
	if got, want := h.Sum(), 0.05+0.1+0.3+0.5+0.9+1+7; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum() = %v, want %v", got, want)
	}
}

// TestHistogramQuantileVsOracle checks the bucket-interpolated quantiles
// against a sort-based oracle: the estimate must land within the width of
// the bucket containing the oracle's answer — the best any fixed-bucket
// histogram can promise.
func TestHistogramQuantileVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	h := newHistogram(LatencyBuckets)
	samples := make([]float64, n)
	for i := range samples {
		// Log-uniform over [100µs, 5s): spans most buckets like real
		// latencies do.
		v := math.Exp(rng.Float64()*math.Log(5e4)) * 1e-4
		samples[i] = v
		h.Observe(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		oracle := samples[int(q*float64(n))-1]
		got := h.Quantile(q)
		lo, hi := bucketAround(LatencyBuckets, oracle)
		if got < lo || got > hi {
			t.Errorf("q=%v: estimate %v outside oracle bucket [%v, %v] (oracle %v)", q, got, lo, hi, oracle)
		}
	}
}

// bucketAround returns the [lower, upper] bounds of the bucket containing v.
func bucketAround(bounds []float64, v float64) (float64, float64) {
	i := sort.SearchFloat64s(bounds, v)
	lo := 0.0
	if i > 0 {
		lo = bounds[i-1]
	}
	if i == len(bounds) {
		return lo, math.Inf(1)
	}
	return lo, bounds[i]
}

// TestHistogramQuantileEdgeCases pins behavior on empty histograms and
// +Inf-bucket observations.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(100) // +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("+Inf-bucket quantile = %v, want highest finite bound 2", got)
	}
	s := h.Snapshot()
	if s.Count != 1 || s.Last != 100 {
		t.Errorf("snapshot = %+v, want Count 1 Last 100", s)
	}
}

// TestConcurrentWriters hammers one registry from many goroutines; run
// under -race this is the data-race test, and the totals check that no
// increment is lost.
func TestConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "t")
	cv := reg.CounterVec("test_labeled_total", "t", "worker")
	g := reg.Gauge("test_gauge", "t")
	h := reg.Histogram("test_seconds", "t", LatencyBuckets)
	hv := reg.HistogramVec("test_labeled_seconds", "t", LatencyBuckets, "worker")

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				cv.With(name).Inc()
				g.Add(1)
				h.Observe(float64(i%100) * 1e-3)
				hv.With(name).Observe(float64(i%100) * 1e-3)
			}
		}(w)
	}
	// Concurrent rendering must be safe too.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb stringWriter
			_ = reg.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		name := string(rune('a' + w))
		if got := cv.With(name).Value(); got != iters {
			t.Errorf("counter{worker=%s} = %d, want %d", name, got, iters)
		}
	}
}

type stringWriter struct{ b []byte }

func (w *stringWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// TestSetEnabled checks the collection kill switch used by the benchrunner
// overhead experiment: writes while disabled vanish, reads still work.
func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	reg := NewRegistry()
	c := reg.Counter("kill_total", "t")
	h := reg.Histogram("kill_seconds", "t", []float64{1})
	c.Inc()
	h.Observe(0.5)
	SetEnabled(false)
	c.Inc()
	h.Observe(0.5)
	SetEnabled(true)
	if got := c.Value(); got != 1 {
		t.Errorf("counter = %d, want 1 (disabled write leaked)", got)
	}
	if got := h.Count(); got != 1 {
		t.Errorf("histogram count = %d, want 1 (disabled write leaked)", got)
	}
}

// TestRegistryConflicts pins the fail-loudly contract for re-registration.
func TestRegistryConflicts(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("same_total", "t")
	if reg.Counter("same_total", "t") == nil {
		t.Fatal("re-registration with matching shape must return the family")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration must panic")
		}
	}()
	reg.Gauge("same_total", "t")
}
