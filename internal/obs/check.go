package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// CheckExposition is a strict parser for the subset of the Prometheus text
// format this package emits. It validates metric/label name charsets, label
// quoting and escaping, sample values, TYPE declarations, and histogram
// invariants (cumulative buckets, trailing +Inf equal to _count). Tests use
// it on golden output and the multi-shard e2e test reuses it on live
// /metrics scrapes.
func CheckExposition(text string) error {
	types := map[string]string{}
	// histogram bookkeeping per series (family name + labels minus le)
	lastBucket := map[string]uint64{}
	infBucket := map[string]uint64{}
	countVal := map[string]uint64{}
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return fmt.Errorf("line %d: malformed HELP", lineNo)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !validMetricName(fields[0]) {
				return fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q", lineNo, fields[1])
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		base := histogramBase(name, types)
		if base == "" {
			continue // not a histogram series; nothing more to check
		}
		series := base + "|" + labelsWithoutLe(labels)
		switch {
		case strings.HasSuffix(name, "_bucket"):
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: bucket value %q not a count", lineNo, value)
			}
			le := leValue(labels)
			if le == "" {
				return fmt.Errorf("line %d: bucket without le label", lineNo)
			}
			if n < lastBucket[series] {
				return fmt.Errorf("line %d: buckets not cumulative", lineNo)
			}
			lastBucket[series] = n
			if le == "+Inf" {
				infBucket[series] = n
			}
		case strings.HasSuffix(name, "_count"):
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: count value %q not a count", lineNo, value)
			}
			countVal[series] = n
		}
	}
	for series, n := range countVal {
		if inf, ok := infBucket[series]; ok && inf != n {
			return fmt.Errorf("series %s: +Inf bucket %d != count %d", series, inf, n)
		}
	}
	return nil
}

// parseSample splits `name{labels} value` (labels optional) and validates
// each part.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := findLabelEnd(rest[i:])
		if j < 0 {
			return "", "", "", fmt.Errorf("unterminated label set")
		}
		labels = rest[i+1 : i+j]
		rest = strings.TrimLeft(rest[i+j+1:], " ")
		if err := checkLabels(labels); err != nil {
			return "", "", "", err
		}
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return "", "", "", fmt.Errorf("sample without value")
		}
	}
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	value = strings.TrimSpace(rest)
	if value != "+Inf" && value != "-Inf" && value != "NaN" {
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return "", "", "", fmt.Errorf("invalid sample value %q", value)
		}
	}
	return name, labels, value, nil
}

// findLabelEnd returns the offset of the closing '}' of a label set that
// starts at s[0] == '{', honoring quoted values with escapes.
func findLabelEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// checkLabels validates a comma-separated k="v" list.
func checkLabels(labels string) error {
	for _, pair := range splitLabels(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || !validLabelName(k) {
			return fmt.Errorf("invalid label pair %q", pair)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted label value in %q", pair)
		}
		body := v[1 : len(v)-1]
		for i := 0; i < len(body); i++ {
			switch body[i] {
			case '"':
				return fmt.Errorf("unescaped quote in label value %q", pair)
			case '\\':
				i++
				if i >= len(body) || (body[i] != '\\' && body[i] != '"' && body[i] != 'n') {
					return fmt.Errorf("bad escape in label value %q", pair)
				}
			}
		}
	}
	return nil
}

// splitLabels splits on commas outside quotes.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func labelsWithoutLe(labels string) string {
	var out []string
	for _, pair := range splitLabels(labels) {
		if !strings.HasPrefix(pair, "le=") {
			out = append(out, pair)
		}
	}
	return strings.Join(out, ",")
}

func leValue(labels string) string {
	for _, pair := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(pair, "le="); ok {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}

// histogramBase returns the family name when name is a histogram series
// (_bucket/_sum/_count of a declared histogram), else "".
func histogramBase(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && types[base] == "histogram" {
			return base
		}
	}
	return ""
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
