// Package obs is the repo's dependency-free telemetry layer: atomic
// counters, gauges and fixed-bucket latency histograms collected in a
// process-wide Registry and rendered in the Prometheus text exposition
// format, plus request-scoped tracing (a request id generated at the HTTP
// edge, propagated via the X-Request-Id header through darwin-router to the
// owning darwind shard, and stamped into both daemons' structured request
// logs).
//
// Design constraints, in order:
//
//  1. Zero dependencies — the whole module builds with the standard library
//     only, and so does its telemetry.
//  2. Hot-path safe — Counter.Add, Gauge.Set and Histogram.Observe are
//     lock-free (single atomic ops); the suggest step, the bitset kernels
//     and the journal append path can afford them. Registration takes a
//     mutex but happens once per process at package init.
//  3. Side-channel only — metrics, request ids and logs never feed back
//     into discovery state. Golden replay transcripts are bit-identical
//     with telemetry enabled, disabled (SetEnabled), or absent.
//
// Metric families are get-or-create: registering the same name again with
// the same type and label names returns the existing family, so packages
// declare their instruments in package-level vars against Default() and
// tests can construct servers repeatedly in one process. Registering a name
// with a conflicting type or label set panics (a programmer error, caught
// by the first test that runs).
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// metric type names as rendered in # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// enabled is the process-wide collection switch (default on). It exists for
// one consumer: the benchrunner overhead experiment, which measures the
// same scripted session with collection off and on to bound instrumentation
// cost. Serving code never flips it.
var enabledFlag atomic.Bool

func init() { enabledFlag.Store(true) }

// SetEnabled turns metric collection on or off process-wide. Off makes
// Counter.Add, Gauge.Set and Histogram.Observe no-ops (reads and rendering
// still work). Intended for A/B overhead measurement, not for serving.
func SetEnabled(on bool) { enabledFlag.Store(on) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabledFlag.Load() }

// Registry is a set of metric families rendered together by
// WritePrometheus. The zero value is not usable; use NewRegistry or the
// process-wide Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family: its metadata plus its children (one
// per label-value combination; unlabeled families have a single child under
// the empty key).
type family struct {
	name   string
	help   string
	typ    string
	labels []string
	bounds []float64 // histogram bucket upper bounds

	mu       sync.Mutex
	children map[string]child
	order    []string // child keys in first-use order (sorted at render)
	fn       func() float64
	fnSet    bool
}

// child is any scalar metric that can live inside a family.
type child interface{ isMetric() }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package-level instrument
// registers against. Both daemons serve it at GET /metrics.
func Default() *Registry { return defaultRegistry }

// NewRegistry creates an empty registry (tests use private ones to assert
// exact exposition output).
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family with the given name, creating it if absent, and
// panics when an existing family disagrees on type, label names or buckets —
// two packages fighting over one name is a bug worth failing loudly on.
func (r *Registry) lookup(name, help, typ string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) || !equalFloats(f.bounds, bounds) {
			panic(fmt.Sprintf("obs: metric %q re-registered with conflicting type/labels/buckets", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]child),
	}
	r.families[name] = f
	return f
}

// labelSep joins label values into a child key. It cannot appear in a label
// value that round-trips ambiguously because values are escaped at render
// time, not at key time; 0xFF is not valid UTF-8 so it cannot split a value
// into another valid pair.
const labelSep = "\xff"

// childFor returns the family's child for the given label values, creating
// it with mk on first use.
func (f *family) childFor(values []string, mk func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := ""
	for i, v := range values {
		if i > 0 {
			key += labelSep
		}
		key += v
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = mk()
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// snapshotChildren returns the child keys sorted and a copy of the map,
// for rendering without holding the family lock across writes.
func (f *family) snapshotChildren() ([]string, map[string]child) {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	out := make(map[string]child, len(f.children))
	for k, v := range f.children {
		out[k] = v
	}
	return keys, out
}

// --- registration API ---

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, typeCounter, nil, nil)
	return f.childFor(nil, func() child { return &Counter{} }).(*Counter)
}

// CounterVec registers (or finds) a counter family with the given label
// names; use With to resolve a child.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, typeCounter, labels, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, typeGauge, nil, nil)
	return f.childFor(nil, func() child { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers (or finds) a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, typeGauge, labels, nil)}
}

// GaugeFunc registers a gauge whose value is computed by fn at render time.
// Re-registering the same name replaces the callback (last writer wins),
// which is what lets tests construct servers repeatedly: the rendered value
// tracks the most recent owner.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, typeGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.fnSet = true
	f.mu.Unlock()
}

// Histogram registers (or finds) an unlabeled histogram with the given
// ascending bucket upper bounds (a final +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.lookup(name, help, typeHistogram, nil, bounds)
	return f.childFor(nil, func() child { return newHistogram(f.bounds) }).(*Histogram)
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, typeHistogram, labels, bounds)}
}

// --- vec resolution ---

// CounterVec resolves label values to Counter children.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use). Children are cached; With on a hot path costs one map lookup under
// the family mutex — resolve once into a variable where it matters.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.childFor(values, func() child { return &Counter{} }).(*Counter)
}

// GaugeVec resolves label values to Gauge children.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.childFor(values, func() child { return &Gauge{} }).(*Gauge)
}

// HistogramVec resolves label values to Histogram children.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values (created on first
// use).
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.childFor(values, func() child { return newHistogram(v.f.bounds) }).(*Histogram)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
