package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry in Prometheus text exposition format. Mounted
// unauthenticated (like /healthz) on both daemons.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// WritePrometheus renders every family in name order: # HELP and # TYPE
// lines followed by the samples, with histogram children expanded into
// cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		fams[name] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		writeFamily(&b, fams[name])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeFamily(b *strings.Builder, f *family) {
	f.mu.Lock()
	fn, fnSet := f.fn, f.fnSet
	f.mu.Unlock()
	keys, children := f.snapshotChildren()
	if len(keys) == 0 && !fnSet {
		return
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if fnSet {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(fn()))
		return
	}
	for _, key := range keys {
		values := splitKey(key, len(f.labels))
		switch c := children[key].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), c.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(c.Value()))
		case *Histogram:
			writeHistogram(b, f, values, c)
		}
	}
}

func writeHistogram(b *strings.Builder, f *family, values []string, h *Histogram) {
	counts, total := h.readCounts()
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", formatFloat(bound)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", "+Inf"), total)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), total)
}

// labelString renders {k="v",...}, appending the extra pair (used for the
// histogram le label) when extraKey is non-empty. No labels at all renders
// as the empty string.
func labelString(labels, values []string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, labelSep, n)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a help string: backslash and newline (quotes are legal
// in HELP text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest decimal form, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
