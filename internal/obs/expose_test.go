package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestGoldenExposition freezes the full exposition output of a small
// registry. The format is what promtool parses: HELP/TYPE preambles,
// sorted families, cumulative histogram buckets, escaped label values.
func TestGoldenExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("g_requests_total", "Requests served.").Add(3)
	cv := reg.CounterVec("g_errors_total", "Errors by kind.", "kind")
	cv.With("timeout").Add(2)
	cv.With("bad\"quote\\and\nnewline").Inc()
	reg.Gauge("g_in_flight", "In-flight requests.").Set(1.5)
	reg.GaugeFunc("g_sessions", "Live sessions.", func() float64 { return 4 })
	h := reg.Histogram("g_latency_seconds", "Latency.", []float64{0.1, 0.5, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP g_errors_total Errors by kind.
# TYPE g_errors_total counter
g_errors_total{kind="bad\"quote\\and\nnewline"} 1
g_errors_total{kind="timeout"} 2
# HELP g_in_flight In-flight requests.
# TYPE g_in_flight gauge
g_in_flight 1.5
# HELP g_latency_seconds Latency.
# TYPE g_latency_seconds histogram
g_latency_seconds_bucket{le="0.1"} 2
g_latency_seconds_bucket{le="0.5"} 3
g_latency_seconds_bucket{le="1"} 3
g_latency_seconds_bucket{le="+Inf"} 4
g_latency_seconds_sum 2.4
g_latency_seconds_count 4
# HELP g_requests_total Requests served.
# TYPE g_requests_total counter
g_requests_total 3
# HELP g_sessions Live sessions.
# TYPE g_sessions gauge
g_sessions 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := CheckExposition(sb.String()); err != nil {
		t.Errorf("golden output fails the strict checker: %v", err)
	}
}

// TestHandler checks the HTTP wrapper: content type and a body that passes
// the strict format checker.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("h_total", "Help.").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	if err := CheckExposition(rec.Body.String()); err != nil {
		t.Errorf("exposition does not parse: %v", err)
	}
}

// TestExpositionParses runs the strict checker over a registry exercising
// every metric type, including awkward label values.
func TestExpositionParses(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("p_total", "Help.", "a", "b").With(`x\y"z`, "plain").Add(7)
	reg.GaugeVec("p_gauge", "Help.", "shard").With("alpha").Set(-2.5)
	reg.GaugeFunc("p_fn", "Help.", func() float64 { return math.Inf(1) })
	reg.HistogramVec("p_seconds", "Help.", LatencyBuckets, "route").With("GET /v2/labelers").Observe(0.02)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(sb.String()); err != nil {
		t.Errorf("exposition does not parse: %v\n%s", err, sb.String())
	}
}

// TestCheckExpositionRejects makes sure the strict checker actually rejects
// malformed exposition (otherwise the e2e scrape assertion is vacuous).
func TestCheckExpositionRejects(t *testing.T) {
	bad := []string{
		"metric{label=unquoted} 1\n",
		"metric{l=\"v\"} notanumber\n",
		"0leading_digit 1\n",
		"# TYPE m bogus\nm 1\n",
		"# TYPE m histogram\nm_bucket{le=\"1\"} 5\nm_bucket{le=\"+Inf\"} 3\n",
		"metric{l=\"unterminated} 1\n",
	}
	for _, text := range bad {
		if err := CheckExposition(text); err == nil {
			t.Errorf("checker accepted malformed input:\n%s", text)
		}
	}
}
