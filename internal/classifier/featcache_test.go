package classifier

import (
	"sync"
	"testing"

	"repro/internal/corpus"
)

func capTestCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	texts := []string{
		"best way to get to the airport",
		"how do I reach the station",
		"the shuttle to downtown runs hourly",
		"directions to the museum please",
		"this sentence is about cooking pasta",
		"the weather is nice today",
		"take the bus to the terminal",
		"walking route to the harbor",
		"the recipe needs two eggs",
		"trains to the airport leave often",
		"what is the fastest way downtown",
		"the cat sat on the mat",
	}
	c := corpus.New("cap-test", "feature cache")
	for _, tx := range texts {
		c.Add(tx, corpus.Negative)
	}
	c.Preprocess(corpus.PreprocessOptions{})
	return c
}

// TestFeatureCacheCapIsBitIdentical pins the cap's contract: a capped cache
// changes memory use only — training and scoring stay bit-identical,
// because uncached sentences are featurized on the fly with the same
// deterministic featurizer.
func TestFeatureCacheCapIsBitIdentical(t *testing.T) {
	c := capTestCorpus(t)
	positives := map[int]bool{0: true, 1: true, 6: true, 9: true}

	score := func(cache *FeatureCache) []float64 {
		sc := NewSentenceClassifier(c, nil, Config{Epochs: 6, LearningRate: 0.3, Seed: 5}, KindLogReg)
		sc.ShareFeatureCache(cache)
		if err := sc.TrainFromPositives(positives); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), sc.ScoreAll()...)
	}

	full := score(NewFeatureCache(c.Len()))
	capped := NewFeatureCacheCapped(c.Len(), 3)
	got := score(capped)
	for i := range full {
		if full[i] != got[i] {
			t.Fatalf("score %d differs with capped cache: %v vs %v", i, full[i], got[i])
		}
	}
	if n := capped.Len(); n > 3 {
		t.Fatalf("capped cache holds %d entries, cap is 3", n)
	}
	if n := capped.Len(); n == 0 {
		t.Fatal("capped cache cached nothing")
	}
}

// TestFeatureCacheCapUnderConcurrentFills checks the CAS slot claim: racing
// classifiers sharing one capped cache never exceed the cap and never
// double-count a slot.
func TestFeatureCacheCapUnderConcurrentFills(t *testing.T) {
	c := capTestCorpus(t)
	const cap = 5
	cache := NewFeatureCacheCapped(c.Len(), cap)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := NewSentenceClassifier(c, nil, Config{Epochs: 2, LearningRate: 0.3, Seed: int64(w + 1)}, KindLogReg)
			sc.ShareFeatureCache(cache)
			if err := sc.TrainFromPositives(map[int]bool{0: true, 1: true}); err != nil {
				t.Error(err)
				return
			}
			sc.ScoreAll()
		}(w)
	}
	wg.Wait()
	if n := cache.Len(); n > cap {
		t.Fatalf("cache holds %d entries, cap is %d", n, cap)
	}
	filled := 0
	for i := range cache.slots {
		if cache.slots[i].Load() != nil {
			filled++
		}
	}
	if filled != cache.Len() {
		t.Fatalf("entry count %d does not match filled slots %d", cache.Len(), filled)
	}
}

// TestFeatureCacheUncappedFillsCorpus documents the default: without a cap
// the whole corpus ends up cached after a full scoring pass.
func TestFeatureCacheUncappedFillsCorpus(t *testing.T) {
	c := capTestCorpus(t)
	cache := NewFeatureCache(c.Len())
	sc := NewSentenceClassifier(c, nil, Config{Epochs: 2, LearningRate: 0.3, Seed: 1}, KindLogReg)
	sc.ShareFeatureCache(cache)
	if err := sc.TrainFromPositives(map[int]bool{0: true, 1: true}); err != nil {
		t.Fatal(err)
	}
	sc.ScoreAll()
	if cache.Len() != c.Len() {
		t.Fatalf("uncapped cache holds %d of %d entries", cache.Len(), c.Len())
	}
}
