// Package classifier provides the probabilistic short-text classifiers that
// Darwin uses to estimate p_s — the probability that a sentence is a positive
// instance — which drives the benefit score of candidate heuristics.
//
// The paper uses a Kim-2014 convolutional network over stacked word
// embeddings. The classifier's only role in Darwin is to produce calibrated
// positive probabilities that are better than random and that generalize
// across semantically related sentences; this package substitutes a logistic
// regression and a one-hidden-layer MLP over a feature vector that combines
// the corpus-trained sentence embedding with hashed bag-of-words features.
// Both satisfy the (θ, β, β') classifier model used in the paper's analysis.
package classifier

import (
	"hash/fnv"

	"repro/internal/embedding"
)

// Featurizer converts token sequences into dense feature vectors. It combines
// the sentence embedding (semantic generalization) with a hashed bag-of-words
// block (memorization of discriminative tokens such as "shuttle").
type Featurizer struct {
	emb     *embedding.Model
	hashDim int
	embDim  int
}

// NewFeaturizer creates a Featurizer. emb may be nil, in which case only the
// hashed bag-of-words block is used. hashDim controls the size of the hashed
// block (0 uses a default of 512).
func NewFeaturizer(emb *embedding.Model, hashDim int) *Featurizer {
	if hashDim <= 0 {
		hashDim = 512
	}
	embDim := 0
	if emb != nil {
		embDim = emb.Dim()
	}
	return &Featurizer{emb: emb, hashDim: hashDim, embDim: embDim}
}

// Dim returns the dimensionality of the produced feature vectors.
func (f *Featurizer) Dim() int { return f.embDim + f.hashDim }

// EmbDim returns the dimensionality of the embedding block (0 without an
// embedding model).
func (f *Featurizer) EmbDim() int { return f.embDim }

// Features returns the feature vector of a tokenized sentence.
func (f *Featurizer) Features(tokens []string) []float64 {
	out := make([]float64, f.Dim())
	if f.emb != nil {
		copy(out, f.emb.SentenceVector(tokens))
	}
	if len(tokens) == 0 {
		return out
	}
	// Hashed bag of words, L1-normalized over the hashed block.
	inv := 1.0 / float64(len(tokens))
	for _, tok := range tokens {
		h := fnv.New32a()
		h.Write([]byte(tok))
		idx := int(h.Sum32()) % f.hashDim
		if idx < 0 {
			idx += f.hashDim
		}
		out[f.embDim+idx] += inv
	}
	return out
}

// FeaturesBatch featurizes many sentences at once.
func (f *Featurizer) FeaturesBatch(sentences [][]string) [][]float64 {
	out := make([][]float64, len(sentences))
	for i, s := range sentences {
		out[i] = f.Features(s)
	}
	return out
}
