package classifier

import (
	"math"
	"math/rand"
)

// MLP is a one-hidden-layer feed-forward network with tanh activations and a
// sigmoid output, trained with SGD. It is the closest stdlib-only stand-in
// for the paper's Kim-2014 CNN: both consume embedding-derived features and
// produce a positive-class probability.
type MLP struct {
	cfg     Config
	w1      [][]float64 // hidden x input
	b1      []float64
	w2      []float64 // hidden
	b2      float64
	trained bool
}

// NewMLP creates an MLP with the given config.
func NewMLP(cfg Config) *MLP {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 16
	}
	return &MLP{cfg: cfg}
}

// Fit trains the network. Labels must be 0 or 1.
func (m *MLP) Fit(X [][]float64, y []int) error {
	if len(X) == 0 {
		return ErrNoTrainingData
	}
	if len(X) != len(y) {
		return ErrDimensionMismatch
	}
	dim := len(X[0])
	for _, x := range X {
		if len(x) != dim {
			return ErrDimensionMismatch
		}
	}
	h := m.cfg.Hidden
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	m.w1 = make([][]float64, h)
	m.b1 = make([]float64, h)
	scale := 1.0 / math.Sqrt(float64(dim))
	for j := range m.w1 {
		m.w1[j] = make([]float64, dim)
		for d := range m.w1[j] {
			m.w1[j][d] = (rng.Float64()*2 - 1) * scale
		}
	}
	m.w2 = make([]float64, h)
	for j := range m.w2 {
		m.w2[j] = (rng.Float64()*2 - 1) / math.Sqrt(float64(h))
	}
	m.b2 = 0

	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	lr := m.cfg.LearningRate
	hidden := make([]float64, h)
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			x := X[i]
			target := float64(y[i])
			// Forward.
			for j := 0; j < h; j++ {
				hidden[j] = math.Tanh(dot(m.w1[j], x) + m.b1[j])
			}
			out := sigmoid(dot(m.w2, hidden) + m.b2)
			// Backward (cross-entropy + sigmoid => delta = out - target).
			delta := out - target
			for j := 0; j < h; j++ {
				gradW2 := delta * hidden[j]
				// Backprop into hidden unit j.
				dh := delta * m.w2[j] * (1 - hidden[j]*hidden[j])
				m.w2[j] -= lr * (gradW2 + m.cfg.L2*m.w2[j])
				for d, xd := range x {
					m.w1[j][d] -= lr * (dh*xd + m.cfg.L2*m.w1[j][d])
				}
				m.b1[j] -= lr * dh
			}
			m.b2 -= lr * delta
		}
	}
	m.trained = true
	return nil
}

// Proba returns P(y=1|x). An untrained model returns 0.5.
func (m *MLP) Proba(x []float64) float64 {
	if !m.trained || len(m.w1) == 0 || len(x) != len(m.w1[0]) {
		return 0.5
	}
	h := len(m.w1)
	var z float64
	for j := 0; j < h; j++ {
		z += m.w2[j] * math.Tanh(dot(m.w1[j], x)+m.b1[j])
	}
	return sigmoid(z + m.b2)
}
