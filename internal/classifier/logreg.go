package classifier

import (
	"errors"
	"math"
	"math/rand"
)

// Model is a binary probabilistic classifier over dense feature vectors.
type Model interface {
	// Fit trains the model on features X with binary labels y (0 or 1).
	Fit(X [][]float64, y []int) error
	// Proba returns P(label=1 | x).
	Proba(x []float64) float64
}

// Config holds the shared hyperparameters for the trainable classifiers.
type Config struct {
	// Epochs is the number of SGD passes over the training set.
	Epochs int
	// LearningRate is the SGD step size.
	LearningRate float64
	// L2 is the L2 regularization strength.
	L2 float64
	// Hidden is the hidden-layer width (MLP only).
	Hidden int
	// Seed drives weight initialization and example shuffling.
	Seed int64
}

// DefaultConfig returns the hyperparameters used in the experiments.
func DefaultConfig() Config {
	return Config{Epochs: 10, LearningRate: 0.1, L2: 1e-4, Hidden: 16, Seed: 1}
}

// ErrNoTrainingData is returned by Fit when X is empty.
var ErrNoTrainingData = errors.New("classifier: no training data")

// ErrDimensionMismatch is returned when feature vectors have inconsistent
// lengths or labels do not align with features.
var ErrDimensionMismatch = errors.New("classifier: dimension mismatch")

// LogisticRegression is an L2-regularized logistic regression trained with
// SGD. The zero value is not usable; construct with NewLogisticRegression.
type LogisticRegression struct {
	cfg     Config
	weights []float64
	bias    float64
	trained bool
}

// NewLogisticRegression creates a logistic regression with the given config.
func NewLogisticRegression(cfg Config) *LogisticRegression {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	return &LogisticRegression{cfg: cfg}
}

// Fit trains the model. Labels must be 0 or 1.
func (m *LogisticRegression) Fit(X [][]float64, y []int) error {
	if len(X) == 0 {
		return ErrNoTrainingData
	}
	if len(X) != len(y) {
		return ErrDimensionMismatch
	}
	dim := len(X[0])
	for _, x := range X {
		if len(x) != dim {
			return ErrDimensionMismatch
		}
	}
	m.weights = make([]float64, dim)
	m.bias = 0
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	lr := m.cfg.LearningRate
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			x := X[i]
			target := float64(y[i])
			p := sigmoid(dot(m.weights, x) + m.bias)
			grad := p - target
			for d, xd := range x {
				m.weights[d] -= lr * (grad*xd + m.cfg.L2*m.weights[d])
			}
			m.bias -= lr * grad
		}
	}
	m.trained = true
	return nil
}

// Proba returns P(y=1|x). An untrained model returns 0.5 (uninformative).
func (m *LogisticRegression) Proba(x []float64) float64 {
	if !m.trained || len(x) != len(m.weights) {
		return 0.5
	}
	return sigmoid(dot(m.weights, x) + m.bias)
}

func sigmoid(z float64) float64 {
	if z > 30 {
		return 1
	}
	if z < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
