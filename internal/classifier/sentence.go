package classifier

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/embedding"
)

// Kind selects which underlying model a SentenceClassifier trains.
type Kind string

// Supported classifier kinds.
const (
	KindLogReg Kind = "logreg"
	KindMLP    Kind = "mlp"
)

// SentenceClassifier wraps a featurizer and a probabilistic model and exposes
// the exact interface Darwin needs: retrain from the set of discovered
// positive instances (sampling random corpus sentences as negatives, as
// described in §3.3 of the paper) and score every sentence with p_s.
type SentenceClassifier struct {
	corp *corpus.Corpus
	feat *Featurizer
	cfg  Config
	kind Kind
	rng  *rand.Rand

	// NegativeFactor controls how many random negatives are sampled per
	// positive training example (default 3).
	NegativeFactor int

	model  Model
	scores []float64
	scored bool
}

// NewSentenceClassifier creates a classifier over the given corpus. emb may
// be nil to disable embedding features. The corpus must be preprocessed
// (tokens available).
func NewSentenceClassifier(c *corpus.Corpus, emb *embedding.Model, cfg Config, kind Kind) *SentenceClassifier {
	if kind == "" {
		kind = KindLogReg
	}
	return &SentenceClassifier{
		corp:           c,
		feat:           NewFeaturizer(emb, 512),
		cfg:            cfg,
		kind:           kind,
		rng:            rand.New(rand.NewSource(cfg.Seed + 17)),
		NegativeFactor: 3,
	}
}

// newModel builds a fresh underlying model for one training round.
func (sc *SentenceClassifier) newModel() Model {
	switch sc.kind {
	case KindMLP:
		return NewMLP(sc.cfg)
	default:
		return NewLogisticRegression(sc.cfg)
	}
}

// TrainFromPositives retrains the classifier using the given positive
// sentence IDs and randomly sampled negatives (skipping known positives).
// It invalidates the cached scores.
func (sc *SentenceClassifier) TrainFromPositives(positiveIDs map[int]bool) error {
	if len(positiveIDs) == 0 {
		return fmt.Errorf("classifier: %w", ErrNoTrainingData)
	}
	var X [][]float64
	var y []int
	for id := 0; id < sc.corp.Len(); id++ {
		if positiveIDs[id] {
			X = append(X, sc.feat.Features(sc.corp.Sentence(id).Tokens))
			y = append(y, 1)
		}
	}
	// Sample negatives uniformly from the rest of the corpus. In imbalanced
	// corpora a uniform sample is overwhelmingly negative, matching the
	// paper's procedure.
	wantNeg := len(X) * sc.NegativeFactor
	if wantNeg < 8 {
		wantNeg = 8
	}
	tries := 0
	negSeen := map[int]bool{}
	for len(negSeen) < wantNeg && tries < wantNeg*20 {
		tries++
		id := sc.rng.Intn(sc.corp.Len())
		if positiveIDs[id] || negSeen[id] {
			continue
		}
		negSeen[id] = true
		X = append(X, sc.feat.Features(sc.corp.Sentence(id).Tokens))
		y = append(y, 0)
	}
	model := sc.newModel()
	if err := model.Fit(X, y); err != nil {
		return fmt.Errorf("classifier: fit: %w", err)
	}
	sc.model = model
	sc.scored = false
	return nil
}

// Trained reports whether the classifier has been trained at least once.
func (sc *SentenceClassifier) Trained() bool { return sc.model != nil }

// Score returns p_s for the sentence with the given ID. Before the first
// training round every sentence scores 0.5.
func (sc *SentenceClassifier) Score(id int) float64 {
	if sc.model == nil {
		return 0.5
	}
	sc.ensureScores()
	if id < 0 || id >= len(sc.scores) {
		return 0.5
	}
	return sc.scores[id]
}

// ScoreAll returns p_s for every sentence in corpus order. The returned slice
// is owned by the classifier and must not be modified.
func (sc *SentenceClassifier) ScoreAll() []float64 {
	sc.ensureScores()
	return sc.scores
}

func (sc *SentenceClassifier) ensureScores() {
	if sc.scored && sc.scores != nil {
		return
	}
	if sc.scores == nil {
		sc.scores = make([]float64, sc.corp.Len())
	}
	for id := 0; id < sc.corp.Len(); id++ {
		if sc.model == nil {
			sc.scores[id] = 0.5
			continue
		}
		sc.scores[id] = sc.model.Proba(sc.feat.Features(sc.corp.Sentence(id).Tokens))
	}
	sc.scored = true
}

// ScoreOne computes p_s for a single sentence directly, without building or
// refreshing the full score cache. It is used by the engine's lazy re-scoring
// optimization (§4.5: only re-evaluate sentences whose previous confidence
// exceeded 0.3).
func (sc *SentenceClassifier) ScoreOne(id int) float64 {
	if sc.model == nil || id < 0 || id >= sc.corp.Len() {
		return 0.5
	}
	return sc.model.Proba(sc.feat.Features(sc.corp.Sentence(id).Tokens))
}

// PredictPositive returns the IDs of all sentences with p_s >= threshold.
func (sc *SentenceClassifier) PredictPositive(threshold float64) []int {
	sc.ensureScores()
	var out []int
	for id, p := range sc.scores {
		if p >= threshold {
			out = append(out, id)
		}
	}
	return out
}

// Entropy returns the binary entropy of the prediction for a sentence, the
// uncertainty measure used by the Active Learning baseline.
func (sc *SentenceClassifier) Entropy(id int) float64 {
	p := sc.Score(id)
	return binaryEntropy(p)
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -(p*math.Log2(p) + (1-p)*math.Log2(1-p))
}
