package classifier

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/embedding"
	"repro/internal/obs"
)

// Classifier telemetry: the feature cache's hit ratio is what makes
// concurrent sessions affordable (a miss featurizes a sentence from scratch),
// and Fit is the per-accept retraining cost.
var (
	featureCacheHits = obs.Default().Counter("darwin_classifier_feature_cache_hits_total",
		"Feature-vector lookups served from the sparse feature cache.")
	featureCacheMisses = obs.Default().Counter("darwin_classifier_feature_cache_misses_total",
		"Feature-vector lookups that featurized the sentence from scratch.")
	fitsTotal = obs.Default().Counter("darwin_classifier_fits_total",
		"Classifier training rounds (one per accepted rule).")
	fitDurations = obs.Default().Histogram("darwin_classifier_fit_duration_seconds",
		"Latency of one classifier training round (featurize + model fit).",
		obs.LatencyBuckets)
)

// Kind selects which underlying model a SentenceClassifier trains.
type Kind string

// Supported classifier kinds.
const (
	KindLogReg Kind = "logreg"
	KindMLP    Kind = "mlp"
)

// SentenceClassifier wraps a featurizer and a probabilistic model and exposes
// the exact interface Darwin needs: retrain from the set of discovered
// positive instances (sampling random corpus sentences as negatives, as
// described in §3.3 of the paper) and score every sentence with p_s.
type SentenceClassifier struct {
	corp *corpus.Corpus
	feat *Featurizer
	cfg  Config
	kind Kind
	rng  *rand.Rand

	// NegativeFactor controls how many random negatives are sampled per
	// positive training example (default 3).
	NegativeFactor int

	model  Model
	scores []float64
	scored bool

	// cache holds each sentence's feature vector in sparse form. By default
	// it is private to this classifier; classifiers over one shared corpus
	// and embedding model should share a single cache via ShareFeatureCache
	// so concurrent sessions do not each featurize the whole corpus.
	cache   *FeatureCache
	scratch []float64
}

// sparseFeatures is one cached feature vector: the dense embedding prefix
// plus (index, value) pairs for the nonzero hashed entries.
type sparseFeatures struct {
	emb []float64
	idx []int32
	val []float64
}

// FeatureCache caches per-sentence sparse feature vectors. Entries are
// immutable once published and slots are atomic pointers, so any number of
// classifiers may read and fill the cache concurrently (a racing fill
// recomputes the identical deterministic entry — slot claim is a CAS, first
// store wins). The cache depends only on the corpus tokens, the embedding
// model and the hash dimension, all immutable after engine construction, so
// one cache is shared at corpus level across every session of an engine.
//
// An optional entry cap bounds memory on large corpora (each entry costs
// roughly 0.5 KB): once cap entries are published, later sentences are
// featurized on the fly instead of cached. Cached or not, the produced
// vectors are bit-identical, so a cap never changes scores.
type FeatureCache struct {
	slots []atomic.Pointer[sparseFeatures]
	cap   int64
	count atomic.Int64
}

// NewFeatureCache creates an unbounded cache for a corpus of n sentences.
func NewFeatureCache(n int) *FeatureCache {
	return &FeatureCache{slots: make([]atomic.Pointer[sparseFeatures], n)}
}

// NewFeatureCacheCapped creates a cache holding at most maxEntries entries
// (non-positive means unbounded).
func NewFeatureCacheCapped(n, maxEntries int) *FeatureCache {
	fc := NewFeatureCache(n)
	fc.cap = int64(maxEntries)
	return fc
}

// Len returns the number of published entries.
func (fc *FeatureCache) Len() int { return int(fc.count.Load()) }

// get returns the cached entry for a sentence, or nil. Sentences beyond the
// cache's slot range (ingested after the cache was sized at boot) are never
// cached and always featurize on the fly.
func (fc *FeatureCache) get(id int) *sparseFeatures {
	if id < 0 || id >= len(fc.slots) {
		return nil
	}
	return fc.slots[id].Load()
}

// put publishes an entry for a sentence unless the entry cap is reached.
// The count is claimed before the slot CAS (and released on a lost race or
// a full cache), so the published-entry count never exceeds the cap even
// under concurrent fills.
func (fc *FeatureCache) put(id int, sf *sparseFeatures) {
	if id < 0 || id >= len(fc.slots) {
		return
	}
	if fc.cap > 0 {
		if fc.count.Add(1) > fc.cap {
			fc.count.Add(-1)
			return
		}
		if !fc.slots[id].CompareAndSwap(nil, sf) {
			fc.count.Add(-1) // another classifier published this slot first
		}
		return
	}
	if fc.slots[id].CompareAndSwap(nil, sf) {
		fc.count.Add(1)
	}
}

// NewSentenceClassifier creates a classifier over the given corpus. emb may
// be nil to disable embedding features. The corpus must be preprocessed
// (tokens available).
func NewSentenceClassifier(c *corpus.Corpus, emb *embedding.Model, cfg Config, kind Kind) *SentenceClassifier {
	if kind == "" {
		kind = KindLogReg
	}
	return &SentenceClassifier{
		corp:           c,
		feat:           NewFeaturizer(emb, 512),
		cfg:            cfg,
		kind:           kind,
		rng:            rand.New(rand.NewSource(cfg.Seed + 17)),
		NegativeFactor: 3,
	}
}

// Reseed resets the negative-sampling RNG to a fresh stream derived from
// seed. Replayable drivers (multi-annotator workspaces) call it before every
// training round with a seed derived from their event sequence, making each
// retrain a pure function of (positives, seed) — independent of how many
// retrains ran before — so snapshot-restored state retrains identically to
// a live process.
func (sc *SentenceClassifier) Reseed(seed int64) {
	sc.rng = rand.New(rand.NewSource(seed))
}

// newModel builds a fresh underlying model for one training round.
func (sc *SentenceClassifier) newModel() Model {
	switch sc.kind {
	case KindMLP:
		return NewMLP(sc.cfg)
	default:
		return NewLogisticRegression(sc.cfg)
	}
}

// ShareFeatureCache replaces the classifier's private feature cache with a
// shared one (created by NewFeatureCache for the same corpus). Call before
// the first training round.
func (sc *SentenceClassifier) ShareFeatureCache(fc *FeatureCache) {
	if fc != nil && len(fc.slots) <= sc.corp.Len() {
		sc.cache = fc
	}
}

// featuresInto fills dst (sized Dim) with sentence id's feature vector,
// populating the sparse cache on first use, and returns dst.
func (sc *SentenceClassifier) featuresInto(id int, dst []float64) []float64 {
	if sc.cache == nil {
		sc.cache = NewFeatureCache(sc.corp.Len())
	}
	fc := sc.cache.get(id)
	if fc == nil {
		featureCacheMisses.Inc()
		full := sc.feat.Features(sc.corp.Sentence(id).Tokens)
		fc = &sparseFeatures{}
		embDim := sc.feat.EmbDim()
		if embDim > 0 {
			fc.emb = append([]float64(nil), full[:embDim]...)
		}
		for i := embDim; i < len(full); i++ {
			if full[i] != 0 {
				fc.idx = append(fc.idx, int32(i))
				fc.val = append(fc.val, full[i])
			}
		}
		sc.cache.put(id, fc)
	} else {
		featureCacheHits.Inc()
	}
	clear(dst)
	copy(dst, fc.emb)
	for i, ix := range fc.idx {
		dst[ix] = fc.val[i]
	}
	return dst
}

// features returns sentence id's feature vector in the classifier's scratch
// buffer; the result is only valid until the next features/featuresInto call.
func (sc *SentenceClassifier) features(id int) []float64 {
	if sc.scratch == nil {
		sc.scratch = make([]float64, sc.feat.Dim())
	}
	return sc.featuresInto(id, sc.scratch)
}

// TrainFromPositives retrains the classifier using the given positive
// sentence IDs and randomly sampled negatives (skipping known positives).
// It invalidates the cached scores.
func (sc *SentenceClassifier) TrainFromPositives(positiveIDs map[int]bool) error {
	if len(positiveIDs) == 0 {
		return fmt.Errorf("classifier: %w", ErrNoTrainingData)
	}
	fitsTotal.Inc()
	defer fitDurations.ObserveSince(time.Now())
	var X [][]float64
	var y []int
	for id := 0; id < sc.corp.Len(); id++ {
		if positiveIDs[id] {
			X = append(X, sc.featuresInto(id, make([]float64, sc.feat.Dim())))
			y = append(y, 1)
		}
	}
	// Sample negatives uniformly from the rest of the corpus. In imbalanced
	// corpora a uniform sample is overwhelmingly negative, matching the
	// paper's procedure.
	wantNeg := len(X) * sc.NegativeFactor
	if wantNeg < 8 {
		wantNeg = 8
	}
	tries := 0
	negSeen := map[int]bool{}
	for len(negSeen) < wantNeg && tries < wantNeg*20 {
		tries++
		id := sc.rng.Intn(sc.corp.Len())
		if positiveIDs[id] || negSeen[id] {
			continue
		}
		negSeen[id] = true
		X = append(X, sc.featuresInto(id, make([]float64, sc.feat.Dim())))
		y = append(y, 0)
	}
	model := sc.newModel()
	if err := model.Fit(X, y); err != nil {
		return fmt.Errorf("classifier: fit: %w", err)
	}
	sc.model = model
	sc.scored = false
	return nil
}

// Trained reports whether the classifier has been trained at least once.
func (sc *SentenceClassifier) Trained() bool { return sc.model != nil }

// Score returns p_s for the sentence with the given ID. Before the first
// training round every sentence scores 0.5.
func (sc *SentenceClassifier) Score(id int) float64 {
	if sc.model == nil {
		return 0.5
	}
	sc.ensureScores()
	if id < 0 || id >= len(sc.scores) {
		return 0.5
	}
	return sc.scores[id]
}

// ScoreAll returns p_s for every sentence in corpus order. The returned slice
// is owned by the classifier and must not be modified.
func (sc *SentenceClassifier) ScoreAll() []float64 {
	sc.ensureScores()
	return sc.scores
}

func (sc *SentenceClassifier) ensureScores() {
	if sc.scored && len(sc.scores) >= sc.corp.Len() {
		return
	}
	if len(sc.scores) < sc.corp.Len() {
		grown := make([]float64, sc.corp.Len())
		copy(grown, sc.scores)
		sc.scores = grown
	}
	for id := 0; id < sc.corp.Len(); id++ {
		if sc.model == nil {
			sc.scores[id] = 0.5
			continue
		}
		sc.scores[id] = sc.model.Proba(sc.features(id))
	}
	sc.scored = true
}

// ScoreOne computes p_s for a single sentence directly, without building or
// refreshing the full score cache. It is used by the engine's lazy re-scoring
// optimization (§4.5: only re-evaluate sentences whose previous confidence
// exceeded 0.3).
func (sc *SentenceClassifier) ScoreOne(id int) float64 {
	if sc.model == nil || id < 0 || id >= sc.corp.Len() {
		return 0.5
	}
	return sc.model.Proba(sc.features(id))
}

// PredictPositive returns the IDs of all sentences with p_s >= threshold.
func (sc *SentenceClassifier) PredictPositive(threshold float64) []int {
	sc.ensureScores()
	var out []int
	for id, p := range sc.scores {
		if p >= threshold {
			out = append(out, id)
		}
	}
	return out
}

// Entropy returns the binary entropy of the prediction for a sentence, the
// uncertainty measure used by the Active Learning baseline.
func (sc *SentenceClassifier) Entropy(id int) float64 {
	p := sc.Score(id)
	return binaryEntropy(p)
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -(p*math.Log2(p) + (1-p)*math.Log2(1-p))
}
