package classifier

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/embedding"
)

// makeSeparableData builds a linearly separable 2D dataset.
func makeSeparableData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			X[i] = []float64{rng.Float64() + 1.0, rng.Float64() + 1.0}
			y[i] = 1
		} else {
			X[i] = []float64{-rng.Float64() - 1.0, -rng.Float64() - 1.0}
			y[i] = 0
		}
	}
	return X, y
}

func TestLogisticRegressionSeparable(t *testing.T) {
	X, y := makeSeparableData(200, 1)
	m := NewLogisticRegression(Config{Epochs: 30, LearningRate: 0.5, Seed: 1})
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	correct := 0
	for i := range X {
		p := m.Proba(X[i])
		pred := 0
		if p >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(X))
	if acc < 0.95 {
		t.Errorf("accuracy on separable data = %.2f, want >= 0.95", acc)
	}
}

func TestMLPSeparable(t *testing.T) {
	X, y := makeSeparableData(200, 2)
	m := NewMLP(Config{Epochs: 40, LearningRate: 0.1, Hidden: 8, Seed: 2})
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	correct := 0
	for i := range X {
		pred := 0
		if m.Proba(X[i]) >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(X))
	if acc < 0.9 {
		t.Errorf("MLP accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestMLPNonLinear(t *testing.T) {
	// XOR-like data: logistic regression cannot fit it, the MLP should do
	// noticeably better than chance.
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		X = append(X, []float64{a, b})
		if (a > 0) != (b > 0) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m := NewMLP(Config{Epochs: 200, LearningRate: 0.1, Hidden: 12, Seed: 3})
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range X {
		pred := 0
		if m.Proba(X[i]) >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(X))
	if acc < 0.8 {
		t.Errorf("MLP XOR accuracy = %.2f, want >= 0.8", acc)
	}
}

func TestFitErrors(t *testing.T) {
	lr := NewLogisticRegression(DefaultConfig())
	if err := lr.Fit(nil, nil); err == nil {
		t.Error("Fit(nil) should error")
	}
	if err := lr.Fit([][]float64{{1, 2}}, []int{1, 0}); err == nil {
		t.Error("label/feature mismatch should error")
	}
	if err := lr.Fit([][]float64{{1, 2}, {1}}, []int{1, 0}); err == nil {
		t.Error("ragged features should error")
	}
	mlp := NewMLP(DefaultConfig())
	if err := mlp.Fit(nil, nil); err == nil {
		t.Error("MLP Fit(nil) should error")
	}
}

func TestUntrainedProba(t *testing.T) {
	lr := NewLogisticRegression(DefaultConfig())
	if p := lr.Proba([]float64{1, 2}); p != 0.5 {
		t.Errorf("untrained logreg Proba = %f", p)
	}
	mlp := NewMLP(DefaultConfig())
	if p := mlp.Proba([]float64{1, 2}); p != 0.5 {
		t.Errorf("untrained MLP Proba = %f", p)
	}
}

func TestProbaBounds(t *testing.T) {
	X, y := makeSeparableData(100, 5)
	for _, m := range []Model{
		NewLogisticRegression(Config{Epochs: 20, LearningRate: 1.0, Seed: 5}),
		NewMLP(Config{Epochs: 20, LearningRate: 0.2, Hidden: 6, Seed: 5}),
	} {
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		f := func(a, b float64) bool {
			a = math.Mod(a, 100)
			b = math.Mod(b, 100)
			if math.IsNaN(a) || math.IsNaN(b) {
				return true
			}
			p := m.Proba([]float64{a, b})
			return p >= 0 && p <= 1 && !math.IsNaN(p)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Error(err)
		}
	}
}

func TestFeaturizer(t *testing.T) {
	f := NewFeaturizer(nil, 64)
	if f.Dim() != 64 {
		t.Errorf("Dim = %d", f.Dim())
	}
	v1 := f.Features([]string{"shuttle", "to", "airport"})
	v2 := f.Features([]string{"shuttle", "to", "airport"})
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("featurizer not deterministic")
		}
	}
	empty := f.Features(nil)
	for _, x := range empty {
		if x != 0 {
			t.Error("empty sentence features not zero")
		}
	}
	batch := f.FeaturesBatch([][]string{{"a"}, {"b", "c"}})
	if len(batch) != 2 {
		t.Errorf("batch size = %d", len(batch))
	}
}

func TestFeaturizerWithEmbeddings(t *testing.T) {
	sents := [][]string{
		{"shuttle", "to", "the", "airport"},
		{"bus", "to", "the", "airport"},
		{"order", "pizza", "for", "dinner"},
	}
	emb := embedding.Train(sents, embedding.Config{Dim: 10, Window: 2, MinCount: 1, Seed: 1})
	f := NewFeaturizer(emb, 32)
	if f.Dim() != 42 {
		t.Errorf("Dim = %d, want 42", f.Dim())
	}
	v := f.Features([]string{"shuttle", "airport"})
	nonzero := false
	for _, x := range v[:10] {
		if x != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("embedding block all zero for known tokens")
	}
}

func buildScoredCorpus() *corpus.Corpus {
	c := corpus.New("toy", "intent")
	positives := []string{
		"what is the best way to get to the airport",
		"is there a shuttle to the airport",
		"how do i get to the train station",
		"is uber the fastest way to get downtown",
		"which bus goes to the airport",
		"is there a bart from the airport to the hotel",
	}
	negatives := []string{
		"can i order a pizza to my room",
		"what time does the pool open",
		"the wifi password is not working",
		"can i get a late checkout tomorrow",
		"do you have extra towels",
		"is breakfast included with my room",
		"my room has not been cleaned",
		"can you recommend a good restaurant",
	}
	for _, s := range positives {
		c.Add(s, corpus.Positive)
	}
	for _, s := range negatives {
		c.Add(s, corpus.Negative)
	}
	c.Preprocess(corpus.PreprocessOptions{})
	return c
}

func TestSentenceClassifierTrainAndScore(t *testing.T) {
	c := buildScoredCorpus()
	emb := embedding.Train(c.TokenizedSentences(), embedding.Config{Dim: 16, Window: 3, MinCount: 1, Seed: 1})
	sc := NewSentenceClassifier(c, emb, Config{Epochs: 30, LearningRate: 0.5, Seed: 1}, KindLogReg)

	if sc.Trained() {
		t.Error("new classifier reports trained")
	}
	if p := sc.Score(0); p != 0.5 {
		t.Errorf("untrained Score = %f", p)
	}

	pos := map[int]bool{0: true, 1: true, 2: true}
	if err := sc.TrainFromPositives(pos); err != nil {
		t.Fatalf("TrainFromPositives: %v", err)
	}
	if !sc.Trained() {
		t.Error("classifier not marked trained")
	}
	scores := sc.ScoreAll()
	if len(scores) != c.Len() {
		t.Fatalf("ScoreAll len = %d", len(scores))
	}
	// Average score of gold positives should exceed that of gold negatives
	// (the "better than random" assumption of §3.8).
	var sumPos, sumNeg float64
	var nPos, nNeg int
	for id, s := range c.Sentences {
		if s.Gold == corpus.Positive {
			sumPos += scores[id]
			nPos++
		} else {
			sumNeg += scores[id]
			nNeg++
		}
	}
	if sumPos/float64(nPos) <= sumNeg/float64(nNeg) {
		t.Errorf("classifier not better than random: posAvg=%.3f negAvg=%.3f",
			sumPos/float64(nPos), sumNeg/float64(nNeg))
	}
}

func TestSentenceClassifierErrorsAndEntropy(t *testing.T) {
	c := buildScoredCorpus()
	sc := NewSentenceClassifier(c, nil, DefaultConfig(), KindMLP)
	if err := sc.TrainFromPositives(nil); err == nil {
		t.Error("training with no positives should error")
	}
	if err := sc.TrainFromPositives(map[int]bool{0: true, 1: true}); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < c.Len(); id++ {
		e := sc.Entropy(id)
		if e < 0 || e > 1.0001 {
			t.Errorf("entropy out of range: %f", e)
		}
	}
	if got := sc.Score(-5); got != 0.5 {
		t.Errorf("out-of-range Score = %f", got)
	}
	preds := sc.PredictPositive(0.0)
	if len(preds) != c.Len() {
		t.Errorf("PredictPositive(0) = %d sentences, want all", len(preds))
	}
}

func TestSentenceClassifierDefaultKind(t *testing.T) {
	c := buildScoredCorpus()
	sc := NewSentenceClassifier(c, nil, DefaultConfig(), "")
	if err := sc.TrainFromPositives(map[int]bool{0: true, 1: true}); err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.model.(*LogisticRegression); !ok {
		t.Errorf("default kind is %T, want *LogisticRegression", sc.model)
	}
}
