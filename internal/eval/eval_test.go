package eval

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

func buildCorpus() *corpus.Corpus {
	c := corpus.New("eval-test", "t")
	for i := 0; i < 10; i++ {
		if i < 4 {
			c.Add("positive sentence", corpus.Positive)
		} else {
			c.Add("negative sentence", corpus.Negative)
		}
	}
	return c
}

func TestConfusionMetrics(t *testing.T) {
	var conf Confusion
	conf.Add(corpus.Positive, corpus.Positive) // TP
	conf.Add(corpus.Positive, corpus.Positive) // TP
	conf.Add(corpus.Positive, corpus.Negative) // FN
	conf.Add(corpus.Negative, corpus.Positive) // FP
	conf.Add(corpus.Negative, corpus.Negative) // TN

	if conf.TP != 2 || conf.FN != 1 || conf.FP != 1 || conf.TN != 1 {
		t.Fatalf("confusion = %+v", conf)
	}
	if p := conf.Precision(); math.Abs(p-2.0/3.0) > 1e-12 {
		t.Errorf("precision = %f", p)
	}
	if r := conf.Recall(); math.Abs(r-2.0/3.0) > 1e-12 {
		t.Errorf("recall = %f", r)
	}
	if f := conf.F1(); math.Abs(f-2.0/3.0) > 1e-12 {
		t.Errorf("f1 = %f", f)
	}
	if a := conf.Accuracy(); math.Abs(a-0.6) > 1e-12 {
		t.Errorf("accuracy = %f", a)
	}
	if conf.String() == "" {
		t.Error("empty String()")
	}
}

func TestConfusionEmpty(t *testing.T) {
	var conf Confusion
	if conf.Precision() != 0 || conf.Recall() != 0 || conf.F1() != 0 || conf.Accuracy() != 0 {
		t.Error("empty confusion metrics should be 0")
	}
}

func TestCoverageAndPrecisionOfSet(t *testing.T) {
	c := buildCorpus()
	discovered := map[int]bool{0: true, 1: true, 5: true}
	if cov := CoverageOfSet(c, discovered); math.Abs(cov-0.5) > 1e-12 {
		t.Errorf("coverage = %f, want 0.5", cov)
	}
	if p := PrecisionOfSet(c, discovered); math.Abs(p-2.0/3.0) > 1e-12 {
		t.Errorf("precision = %f", p)
	}
	if p := PrecisionOfIDs(c, []int{0, 0, 1, 5}); math.Abs(p-2.0/3.0) > 1e-12 {
		t.Errorf("PrecisionOfIDs dedup failed: %f", p)
	}
	if CoverageOfSet(c, nil) != 0 {
		t.Error("empty discovered set coverage != 0")
	}
	if PrecisionOfSet(c, nil) != 0 {
		t.Error("empty discovered set precision != 0")
	}
	empty := corpus.New("e", "t")
	if CoverageOfSet(empty, discovered) != 0 {
		t.Error("coverage over empty corpus != 0")
	}
	// Out-of-range IDs are ignored rather than panicking.
	if cov := CoverageOfSet(c, map[int]bool{999: true}); cov != 0 {
		t.Errorf("out-of-range coverage = %f", cov)
	}
}

func TestClassifierEvalAndBestF1(t *testing.T) {
	c := buildCorpus()
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.4, 0.3, 0.2, 0.1, 0.1, 0.1}
	conf := ClassifierEval(c, scores, 0.5)
	if conf.TP != 4 || conf.FP != 0 || conf.FN != 0 || conf.TN != 6 {
		t.Errorf("confusion = %+v", conf)
	}
	f1, thr := BestF1(c, scores)
	if f1 < 0.999 {
		t.Errorf("BestF1 = %f, want 1.0", f1)
	}
	if thr <= 0.4 || thr > 0.6 {
		t.Errorf("best threshold = %f", thr)
	}
	// Short score slice: missing scores treated as negative.
	conf2 := ClassifierEval(c, scores[:2], 0.5)
	if conf2.TP != 2 || conf2.FN != 2 {
		t.Errorf("short-score confusion = %+v", conf2)
	}
}

func TestCurve(t *testing.T) {
	curve := Curve{Name: "test", Points: []CurvePoint{
		{Questions: 5, Value: 0.2},
		{Questions: 10, Value: 0.5},
		{Questions: 20, Value: 0.8},
	}}
	if v := curve.At(7); v != 0.2 {
		t.Errorf("At(7) = %f", v)
	}
	if v := curve.At(3); v != 0 {
		t.Errorf("At(3) = %f", v)
	}
	if v := curve.At(100); v != 0.8 {
		t.Errorf("At(100) = %f", v)
	}
	if f := curve.Final(); f != 0.8 {
		t.Errorf("Final = %f", f)
	}
	if q := curve.QuestionsToReach(0.5); q != 10 {
		t.Errorf("QuestionsToReach(0.5) = %d", q)
	}
	if q := curve.QuestionsToReach(0.95); q != -1 {
		t.Errorf("QuestionsToReach(0.95) = %d", q)
	}
	auc := curve.AUCN(20)
	if auc <= 0 || auc > 0.8 {
		t.Errorf("AUCN = %f", auc)
	}
	var empty Curve
	if empty.Final() != 0 || empty.At(10) != 0 || empty.AUCN(10) != 0 {
		t.Error("empty curve should be all zeros")
	}
	if empty.QuestionsToReach(0.1) != -1 {
		t.Error("empty curve QuestionsToReach should be -1")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 || math.Abs(std-2) > 1e-12 {
		t.Errorf("MeanStd = %f, %f", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("MeanStd(nil) should be 0,0")
	}
}

// Property: F1 is always within [0,1] and 0 when there are no true positives.
func TestF1Property(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		conf := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		f1 := conf.F1()
		if f1 < 0 || f1 > 1 {
			return false
		}
		if tp == 0 && f1 != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: coverage and precision of any discovered set lie in [0,1].
func TestCoverageProperty(t *testing.T) {
	c := buildCorpus()
	f := func(ids []uint8) bool {
		set := map[int]bool{}
		for _, id := range ids {
			set[int(id)%15] = true // some ids out of range on purpose
		}
		cov := CoverageOfSet(c, set)
		p := PrecisionOfSet(c, set)
		return cov >= 0 && cov <= 1 && p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
