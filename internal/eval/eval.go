// Package eval implements the evaluation metrics reported in the paper's
// experiments: coverage (recall of the discovered positive set), precision,
// recall and F-score of rules and classifiers, plus small helpers for
// building the per-question curves of Figures 9 and 10.
package eval

import (
	"fmt"
	"math"

	"repro/internal/corpus"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add updates the matrix with one (gold, predicted) pair.
func (c *Confusion) Add(gold, pred corpus.Label) {
	switch {
	case gold == corpus.Positive && pred == corpus.Positive:
		c.TP++
	case gold == corpus.Negative && pred == corpus.Positive:
		c.FP++
	case gold == corpus.Negative && pred == corpus.Negative:
		c.TN++
	default:
		c.FN++
	}
}

// Precision returns TP / (TP + FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 when undefined.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN) / total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d P=%.3f R=%.3f F1=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.F1())
}

// CoverageOfSet returns the fraction of the corpus's gold-positive sentences
// contained in the discovered positive set P (the paper's primary metric:
// recall of the union of accepted rules' coverage).
func CoverageOfSet(c *corpus.Corpus, discovered map[int]bool) float64 {
	totalPos := c.NumPositives()
	if totalPos == 0 {
		return 0
	}
	hit := 0
	for id := range discovered {
		s := c.Sentence(id)
		if s != nil && s.Gold == corpus.Positive {
			hit++
		}
	}
	return float64(hit) / float64(totalPos)
}

// PrecisionOfSet returns the fraction of the discovered set that is
// gold-positive.
func PrecisionOfSet(c *corpus.Corpus, discovered map[int]bool) float64 {
	if len(discovered) == 0 {
		return 0
	}
	hit := 0
	for id := range discovered {
		s := c.Sentence(id)
		if s != nil && s.Gold == corpus.Positive {
			hit++
		}
	}
	return float64(hit) / float64(len(discovered))
}

// PrecisionOfIDs is PrecisionOfSet over a slice of sentence IDs (a rule's
// coverage set). Duplicate IDs are counted once.
func PrecisionOfIDs(c *corpus.Corpus, ids []int) float64 {
	set := make(map[int]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return PrecisionOfSet(c, set)
}

// ClassifierEval computes the confusion matrix of thresholded classifier
// scores against the gold labels of the whole corpus.
func ClassifierEval(c *corpus.Corpus, scores []float64, threshold float64) Confusion {
	var conf Confusion
	for id, s := range c.Sentences {
		pred := corpus.Negative
		if id < len(scores) && scores[id] >= threshold {
			pred = corpus.Positive
		}
		conf.Add(s.Gold, pred)
	}
	return conf
}

// BestF1 sweeps thresholds over the score distribution and returns the best
// achievable F1 together with the threshold that achieves it. The paper
// reports classifier F-score; sweeping removes threshold-calibration
// differences between the CNN used in the paper and our substitute models.
func BestF1(c *corpus.Corpus, scores []float64) (f1, threshold float64) {
	best, bestThr := 0.0, 0.5
	for _, thr := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		conf := ClassifierEval(c, scores, thr)
		if f := conf.F1(); f > best {
			best, bestThr = f, thr
		}
	}
	return best, bestThr
}

// CurvePoint is one point of a per-question curve (Figures 9, 10, 12, 13).
type CurvePoint struct {
	Questions int
	Value     float64
}

// Curve is a named series of curve points.
type Curve struct {
	Name   string
	Points []CurvePoint
}

// At returns the curve value at the largest x <= q (step interpolation), or 0
// if the curve is empty or starts after q.
func (c Curve) At(q int) float64 {
	v := 0.0
	found := false
	for _, p := range c.Points {
		if p.Questions <= q {
			v = p.Value
			found = true
		}
	}
	if !found {
		return 0
	}
	return v
}

// Final returns the last value of the curve, or 0 if empty.
func (c Curve) Final() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].Value
}

// AUCN returns the normalized area under the curve up to maxQ (mean value of
// the step function over [0, maxQ]); a summary statistic used to compare
// techniques across an entire budget.
func (c Curve) AUCN(maxQ int) float64 {
	if maxQ <= 0 || len(c.Points) == 0 {
		return 0
	}
	total := 0.0
	for q := 1; q <= maxQ; q++ {
		total += c.At(q)
	}
	return total / float64(maxQ)
}

// QuestionsToReach returns the smallest question count at which the curve
// reaches the target value, or -1 if it never does (used by Figure 14:
// questions to reach 75% coverage).
func (c Curve) QuestionsToReach(target float64) int {
	for _, p := range c.Points {
		if p.Value >= target-1e-12 {
			return p.Questions
		}
	}
	return -1
}

// MeanStd returns the mean and (population) standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
