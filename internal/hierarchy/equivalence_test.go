package hierarchy

import (
	"container/heap"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/index"
	"repro/internal/sketch"
	"repro/internal/tokensregex"
)

// referenceGenerateCandidates is the pre-kernel implementation of Algorithm 2
// (greedy best-first expansion with per-id map scoring), kept verbatim as the
// oracle the bitset path must match key-for-key.
func referenceGenerateCandidates(ix *index.Index, positives map[int]bool, cfg Config) []string {
	k := cfg.NumCandidates
	if k <= 0 {
		k = 10000
	}
	score := func(key string) cand {
		return cand{key: key, overlap: ix.CoverageOverlap(key, positives), total: ix.Count(key)}
	}
	selected := make([]string, 0, k)
	inSelected := map[string]bool{grammar.RootKey: true}
	inCandidates := map[string]bool{}
	candidates := &candHeap{}
	heap.Init(candidates)
	eligible := func(key string) bool {
		if inSelected[key] || inCandidates[key] {
			return false
		}
		n := ix.Node(key)
		if n == nil {
			return false
		}
		if cfg.MaxRuleDepth > 0 && n.Heuristic.Depth() > cfg.MaxRuleDepth {
			return false
		}
		if cfg.MinCoverage > 0 && n.Count() < cfg.MinCoverage {
			return false
		}
		return true
	}
	recent := grammar.RootKey
	for len(selected) < k {
		for _, ck := range ix.Children(recent) {
			if eligible(ck) {
				inCandidates[ck] = true
				heap.Push(candidates, score(ck))
			}
		}
		if candidates.Len() == 0 {
			break
		}
		best := heap.Pop(candidates).(cand)
		delete(inCandidates, best.key)
		inSelected[best.key] = true
		selected = append(selected, best.key)
		recent = best.key
	}
	return selected
}

func equivCorpus() *corpus.Corpus {
	texts := []string{
		"what is the best way to get to the airport",
		"is there a shuttle to the hotel from the airport",
		"what is the best way to order food tonight",
		"can i get a pizza to my room right now",
		"the best way to check in there is online",
		"is uber the fastest way to get downtown",
		"would uber eats be the fastest way to order",
		"the shuttle to the airport leaves at nine",
		"what is the fastest way to get to the station",
		"can i order sushi to the conference room",
	}
	c := corpus.New("equiv", "t")
	for i := 0; i < 12; i++ {
		for _, txt := range texts {
			c.Add(txt, corpus.Negative)
		}
	}
	c.Preprocess(corpus.PreprocessOptions{})
	return c
}

// TestGenerateCandidatesMatchesReference checks that bitset scoring selects
// exactly the reference key sequence across random positive sets.
func TestGenerateCandidatesMatchesReference(t *testing.T) {
	c := equivCorpus()
	reg := grammar.NewRegistry(tokensregex.New())
	ix := index.Build(c, sketch.NewBuilder(reg, 4))
	ix.Prune(2)

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		positives := map[int]bool{}
		for i := 0; i < trial*5; i++ {
			positives[rng.Intn(c.Len())] = true
		}
		cfg := Config{NumCandidates: 200 + trial*100, MaxRuleDepth: 6, MinCoverage: 2, Cleanup: true}
		want := referenceGenerateCandidates(ix, positives, cfg)
		got := GenerateCandidates(ix, positives, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: bitset candidates diverge from reference\n got: %v\nwant: %v", trial, got, want)
		}
		// The assembled hierarchies match too (same nodes, same edges).
		hWant := BuildBits(ix, want, bitset.FromMap(positives), cfg)
		hGot := Generate(ix, positives, cfg)
		if !reflect.DeepEqual(hGot.Keys(), hWant.Keys()) {
			t.Fatalf("trial %d: hierarchy keys diverge", trial)
		}
		for _, key := range hWant.Keys() {
			a, b := hWant.Node(key), hGot.Node(key)
			if !reflect.DeepEqual(a.Parents, b.Parents) || !reflect.DeepEqual(a.Children, b.Children) {
				t.Fatalf("trial %d: edges diverge at %s", trial, key)
			}
		}
	}
}

// TestScoreBatchParallelDeterminism checks that the worker pool scores a
// batch identically to the serial path, regardless of worker count.
func TestScoreBatchParallelDeterminism(t *testing.T) {
	c := equivCorpus()
	reg := grammar.NewRegistry(tokensregex.New())
	ix := index.Build(c, sketch.NewBuilder(reg, 4))
	base := ix.Keys()
	// Tile the key list well past the parallel threshold.
	keys := make([]string, 0, scoreParallelThreshold*2)
	for len(keys) < scoreParallelThreshold*2 {
		keys = append(keys, base...)
	}
	pos := bitset.FromSorted([]int{1, 5, 9, 13, 50, 77})

	serial := make([]cand, len(keys))
	scoreBatch(ix, keys, pos, 1, serial)
	for _, workers := range []int{2, 4, 8} {
		parallel := make([]cand, len(keys))
		scoreBatch(ix, keys, pos, workers, parallel)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("scoreBatch with %d workers diverges from serial", workers)
		}
	}
}

// TestNonRootKeysPreallocated pins the allocation-free accessor: repeated
// calls return the same backing slice, in insertion order, without the root.
func TestNonRootKeysPreallocated(t *testing.T) {
	c := equivCorpus()
	reg := grammar.NewRegistry(tokensregex.New())
	ix := index.Build(c, sketch.NewBuilder(reg, 3))
	h := Generate(ix, nil, Config{NumCandidates: 50, MinCoverage: 2})
	a := h.NonRootKeys()
	b := h.NonRootKeys()
	if len(a) == 0 {
		t.Fatal("no non-root keys")
	}
	if &a[0] != &b[0] {
		t.Error("NonRootKeys reallocates on every call")
	}
	for _, k := range a {
		if k == grammar.RootKey {
			t.Error("NonRootKeys contains the root")
		}
	}
	if len(a) != h.Len()-1 {
		t.Errorf("NonRootKeys has %d keys for %d nodes", len(a), h.Len())
	}
}
