// Package hierarchy implements the heuristic-hierarchy generation component
// of §3.2: candidate generation (Algorithm 2 — a greedy best-first expansion
// of the index picking heuristics with high coverage over the discovered
// positives) and the hierarchical arrangement of the candidates with
// subset/superset edges plus the cleanup pass that drops heuristics adding no
// new positives.
//
// Candidate scoring runs on the dense bitset coverage kernel (word-wise
// intersection + popcount against the positive set) and fans large scoring
// batches across a bounded worker pool; the map-based Generate entry point
// is a thin wrapper that converts the positive set once.
package hierarchy

import (
	"container/heap"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/grammar"
	"repro/internal/index"
	"repro/internal/obs"
)

// Hierarchy regeneration is the dominant cost of a suggest step whenever the
// positive set changed; every interactive caller (solo sessions and shared
// workspaces) funnels through GenerateBits, so one counter + histogram here
// covers the fleet.
var (
	regensTotal = obs.Default().Counter("darwin_hierarchy_regens_total",
		"Full candidate-hierarchy regenerations (one per positive-set or index change).")
	regenDurations = obs.Default().Histogram("darwin_hierarchy_regen_duration_seconds",
		"Latency of one full hierarchy regeneration (candidate generation + arrangement).",
		obs.LatencyBuckets)
)

// Node is one candidate heuristic arranged in the hierarchy.
type Node struct {
	// Key is the heuristic's canonical key.
	Key string
	// Heuristic is the candidate labeling rule.
	Heuristic grammar.Heuristic
	// Coverage is the sorted sentence-ID list covered by the rule.
	Coverage []int
	// Bits is the coverage-kernel mirror of Coverage — dense or adaptive,
	// shared with the index node when the hierarchy was generated from an
	// index; nil for nodes added by hand. Read-only.
	Bits bitset.Cover
	// Parents and Children are hierarchy edges (superset / subset).
	Parents  []string
	Children []string
}

// Hierarchy is the arrangement of candidate heuristics produced each
// iteration of the Darwin pipeline.
type Hierarchy struct {
	nodes map[string]*Node
	order []string // insertion order of keys, root first
	// nonRoot is order minus the root, maintained on Add so NonRootKeys is
	// allocation-free on the per-step hot path.
	nonRoot []string
}

// Root returns the hierarchy's root node (the universal heuristic '*').
func (h *Hierarchy) Root() *Node { return h.nodes[grammar.RootKey] }

// Node returns the node with the given key, or nil.
func (h *Hierarchy) Node(key string) *Node { return h.nodes[key] }

// Len returns the number of nodes including the root.
func (h *Hierarchy) Len() int { return len(h.nodes) }

// Keys returns all node keys (root first, then insertion order).
func (h *Hierarchy) Keys() []string {
	out := make([]string, len(h.order))
	copy(out, h.order)
	return out
}

// NonRootKeys returns all keys except the root, in insertion order. The
// returned slice is owned by the hierarchy and must not be modified; it is
// read on every traversal step.
func (h *Hierarchy) NonRootKeys() []string {
	return h.nonRoot
}

// Contains reports whether the hierarchy holds the key.
func (h *Hierarchy) Contains(key string) bool {
	_, ok := h.nodes[key]
	return ok
}

// Add inserts a node for the heuristic with the given coverage if absent and
// returns it. Edges are not recomputed automatically; call LinkEdges after a
// batch of additions.
func (h *Hierarchy) Add(heur grammar.Heuristic, coverage []int) *Node {
	n := h.add(heur, coverage)
	return n
}

func (h *Hierarchy) add(heur grammar.Heuristic, coverage []int) *Node {
	key := heur.Key()
	if n, ok := h.nodes[key]; ok {
		return n
	}
	n := &Node{Key: key, Heuristic: heur, Coverage: coverage}
	h.nodes[key] = n
	h.order = append(h.order, key)
	if key != grammar.RootKey {
		h.nonRoot = append(h.nonRoot, key)
	}
	return n
}

// Config controls candidate generation.
type Config struct {
	// NumCandidates is k in Algorithm 2: how many candidate heuristics to
	// generate per iteration (the paper uses 10K).
	NumCandidates int
	// MaxRuleDepth drops candidates deeper than this many derivation rules
	// (0 = no limit).
	MaxRuleDepth int
	// MinCoverage drops candidates covering fewer sentences than this.
	MinCoverage int
	// Cleanup removes candidates that add no new positives relative to the
	// already-discovered set P (§3.2 cleanup pass).
	Cleanup bool
	// Workers bounds the candidate-scoring worker pool (0 = GOMAXPROCS,
	// capped at 8; 1 = fully serial).
	Workers int
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{NumCandidates: 10000, MaxRuleDepth: 10, MinCoverage: 2, Cleanup: true}
}

// cand is one candidate heuristic scored by its overlap with the discovered
// positives (primary) and its total coverage (tie-break).
type cand struct {
	key     string
	overlap int
	total   int
}

// candHeap is a max-heap of candidates ordered by (overlap, total, key).
type candHeap []cand

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].overlap != h[j].overlap {
		return h[i].overlap > h[j].overlap
	}
	if h[i].total != h[j].total {
		return h[i].total > h[j].total
	}
	return h[i].key < h[j].key
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(cand)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// scoreParallelThreshold is the batch size above which candidate scoring
// fans out across the worker pool. Below it the fixed goroutine cost
// outweighs the word-wise kernel, which scores a candidate in well under a
// microsecond.
const scoreParallelThreshold = 2048

// resolveWorkers returns the effective worker-pool size.
func resolveWorkers(cfg Config) int {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	return w
}

// scoreBatch scores a batch of eligible keys against the positive set,
// writing results in batch order (deterministic regardless of parallelism).
func scoreBatch(ix *index.Index, keys []string, pos bitset.Set, workers int, out []cand) {
	score := func(i int) {
		key := keys[i]
		out[i] = cand{key: key, overlap: ix.OverlapBits(key, pos), total: ix.Count(key)}
	}
	if workers <= 1 || len(keys) < scoreParallelThreshold {
		for i := range keys {
			score(i)
		}
		return
	}
	var wg sync.WaitGroup
	per := (len(keys) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		if lo >= len(keys) {
			break
		}
		hi := lo + per
		if hi > len(keys) {
			hi = len(keys)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				score(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// GenerateCandidates implements Algorithm 2 over a map positive set; it is a
// thin wrapper around GenerateCandidatesBits (the set is converted once).
func GenerateCandidates(ix *index.Index, positives map[int]bool, cfg Config) []string {
	return GenerateCandidatesBits(ix, bitset.FromMap(positives), cfg)
}

// GenerateCandidatesBits implements Algorithm 2: a greedy best-first
// expansion of the index starting from the root, repeatedly materializing
// the children of the best candidate so far (by coverage over the discovered
// positives P, with total coverage as tie-break) until k candidates are
// selected. The candidate list of the paper's pseudocode is kept as a
// max-heap, making each iteration logarithmic rather than a full re-sort;
// overlap scoring runs on the bitset kernel, fanning large batches (e.g. the
// root's children on the first expansion) across the worker pool.
func GenerateCandidatesBits(ix *index.Index, positives bitset.Set, cfg Config) []string {
	k := cfg.NumCandidates
	if k <= 0 {
		k = 10000
	}
	workers := resolveWorkers(cfg)

	selected := make([]string, 0, k)
	inSelected := map[string]bool{grammar.RootKey: true}
	inCandidates := map[string]bool{}
	candidates := &candHeap{}
	heap.Init(candidates)

	eligible := func(key string) bool {
		if inSelected[key] || inCandidates[key] {
			return false
		}
		n := ix.Node(key)
		if n == nil {
			return false
		}
		if cfg.MaxRuleDepth > 0 && n.Heuristic.Depth() > cfg.MaxRuleDepth {
			return false
		}
		if cfg.MinCoverage > 0 && n.Count() < cfg.MinCoverage {
			return false
		}
		return true
	}

	var batch []string
	var scored []cand
	recent := grammar.RootKey
	for len(selected) < k {
		// Add children of the most recently selected heuristic (line 3).
		batch = batch[:0]
		for _, ck := range ix.Children(recent) {
			if eligible(ck) {
				inCandidates[ck] = true
				batch = append(batch, ck)
			}
		}
		if len(batch) > 0 {
			if cap(scored) < len(batch) {
				scored = make([]cand, len(batch))
			}
			scored = scored[:len(batch)]
			scoreBatch(ix, batch, positives, workers, scored)
			for _, c := range scored {
				heap.Push(candidates, c)
			}
		}
		if candidates.Len() == 0 {
			break
		}
		// Take the candidate with the highest coverage over P (lines 4-7).
		best := heap.Pop(candidates).(cand)
		delete(inCandidates, best.key)
		inSelected[best.key] = true
		selected = append(selected, best.key)
		recent = best.key
	}
	return selected
}

// Build arranges the candidate keys into a hierarchy following the index's
// parent/child relationships (§3.2 "Hierarchical Arrangement and edge
// discovery"). If cfg.Cleanup is set, candidates that add no new positives
// beyond P are dropped first (bitset and-not count per candidate).
func Build(ix *index.Index, candidateKeys []string, positives map[int]bool, cfg Config) *Hierarchy {
	return BuildBits(ix, candidateKeys, bitset.FromMap(positives), cfg)
}

// BuildBits is Build over a bitset positive set.
func BuildBits(ix *index.Index, candidateKeys []string, positives bitset.Set, cfg Config) *Hierarchy {
	h := &Hierarchy{nodes: make(map[string]*Node, len(candidateKeys)+1)}
	root := h.add(grammar.Root(), ix.Root().Postings)
	root.Bits = ix.Root().Bits()

	cleanup := cfg.Cleanup && positives.Count() > 0
	for _, key := range candidateKeys {
		n := ix.Node(key)
		if n == nil {
			continue
		}
		if cleanup && ix.NewCoverageBits(key, positives) == 0 {
			continue
		}
		hn := h.add(n.Heuristic, n.Postings)
		hn.Bits = n.Bits()
	}
	h.LinkEdges(ix)
	return h
}

// LinkEdges recomputes parent/child edges between hierarchy nodes: a node's
// parents are its nearest materialized ancestors in the index (walking up
// grammatical parents), falling back to the root.
//
// Direct edges are read straight off the index's child lists instead of
// re-deriving each node's ancestry: every materialized node links its
// materialized index children in one pass (candidates arrive through those
// same child lists during generation, so most edges are found here). A node
// the pass leaves parentless checks the root in its sorted index parent
// list, and only then runs the upward BFS — whose bookkeeping is shared
// scratch, so regeneration allocates nothing per node on that path.
func (h *Hierarchy) LinkEdges(ix *index.Index) {
	for _, n := range h.nodes {
		n.Parents = n.Parents[:0]
		n.Children = n.Children[:0]
	}
	// Pass 1: direct edges via the index's child lists (root excluded: its
	// child list spans the whole index top level; root parenthood is the
	// cheap membership check below).
	for _, key := range h.order {
		if key == grammar.RootKey {
			continue
		}
		n := h.nodes[key]
		for _, ck := range ix.Children(key) {
			if ck == key {
				continue
			}
			if cn, ok := h.nodes[ck]; ok {
				n.Children = append(n.Children, ck)
				cn.Parents = append(cn.Parents, key)
			}
		}
	}
	// Pass 2: root edges for nodes the root directly parents, and the BFS
	// fallback for nodes with no materialized direct parent at all.
	root := h.nodes[grammar.RootKey]
	var sc linkScratch
	for _, key := range h.order {
		if key == grammar.RootKey {
			continue
		}
		n := h.nodes[key]
		parents := ix.Parents(key) // sorted
		if i := sort.SearchStrings(parents, grammar.RootKey); i < len(parents) && parents[i] == grammar.RootKey {
			n.Parents = append(n.Parents, grammar.RootKey)
			root.Children = append(root.Children, key)
			continue
		}
		if len(n.Parents) > 0 {
			continue
		}
		for _, pk := range h.bfsAncestors(key, parents, ix, &sc) {
			p := h.nodes[pk]
			p.Children = append(p.Children, key)
			n.Parents = append(n.Parents, pk)
		}
	}
	for _, n := range h.nodes {
		sort.Strings(n.Parents)
		n.Parents = dedupSorted(n.Parents)
		sort.Strings(n.Children)
		n.Children = dedupSorted(n.Children)
	}
}

// dedupSorted removes adjacent duplicates in place (duplicate index edges
// would otherwise double an edge found by both link passes).
func dedupSorted(xs []string) []string {
	out := xs[:0]
	prev := ""
	for i, x := range xs {
		if i > 0 && x == prev {
			continue
		}
		out = append(out, x)
		prev = x
	}
	return out
}

// linkScratch is the reusable BFS bookkeeping for bfsAncestors.
type linkScratch struct {
	visited  map[string]bool
	found    map[string]bool
	frontier []string
	next     []string
	out      []string
}

// bfsAncestors walks up the index's parent edges from key, level by level,
// and returns the nearest materialized ancestors (the root if none are
// found). It is the fallback for nodes with no materialized direct parent;
// semantics are unchanged from the original per-node search.
func (h *Hierarchy) bfsAncestors(key string, parents []string, ix *index.Index, sc *linkScratch) []string {
	if sc.visited == nil {
		sc.visited = make(map[string]bool)
		sc.found = make(map[string]bool)
	} else {
		clear(sc.visited)
		clear(sc.found)
	}
	sc.visited[key] = true
	sc.frontier = append(sc.frontier[:0], parents...)
	for len(sc.frontier) > 0 && len(sc.found) == 0 {
		sc.next = sc.next[:0]
		for _, pk := range sc.frontier {
			if sc.visited[pk] {
				continue
			}
			sc.visited[pk] = true
			if pk != key && h.Contains(pk) {
				sc.found[pk] = true
				continue
			}
			sc.next = append(sc.next, ix.Parents(pk)...)
		}
		sc.frontier, sc.next = sc.next, sc.frontier
	}
	if len(sc.found) == 0 {
		return []string{grammar.RootKey}
	}
	sc.out = sc.out[:0]
	for k := range sc.found {
		sc.out = append(sc.out, k)
	}
	sort.Strings(sc.out)
	return sc.out
}

// Generate runs candidate generation and arrangement in one call (the
// "heuristic-hierarchy generation" box of Figure 4) over a map positive set.
func Generate(ix *index.Index, positives map[int]bool, cfg Config) *Hierarchy {
	return GenerateBits(ix, bitset.FromMap(positives), cfg)
}

// GenerateBits is Generate over a bitset positive set — the interactive hot
// path entry point (sessions maintain their positive set as a bitset and
// pass it here without conversion).
func GenerateBits(ix *index.Index, positives bitset.Set, cfg Config) *Hierarchy {
	defer regenDurations.ObserveSince(time.Now())
	regensTotal.Inc()
	keys := GenerateCandidatesBits(ix, positives, cfg)
	return BuildBits(ix, keys, positives, cfg)
}
