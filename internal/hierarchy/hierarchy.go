// Package hierarchy implements the heuristic-hierarchy generation component
// of §3.2: candidate generation (Algorithm 2 — a greedy best-first expansion
// of the index picking heuristics with high coverage over the discovered
// positives) and the hierarchical arrangement of the candidates with
// subset/superset edges plus the cleanup pass that drops heuristics adding no
// new positives.
package hierarchy

import (
	"container/heap"
	"sort"

	"repro/internal/grammar"
	"repro/internal/index"
)

// Node is one candidate heuristic arranged in the hierarchy.
type Node struct {
	// Key is the heuristic's canonical key.
	Key string
	// Heuristic is the candidate labeling rule.
	Heuristic grammar.Heuristic
	// Coverage is the sorted sentence-ID list covered by the rule.
	Coverage []int
	// Parents and Children are hierarchy edges (superset / subset).
	Parents  []string
	Children []string
}

// Hierarchy is the arrangement of candidate heuristics produced each
// iteration of the Darwin pipeline.
type Hierarchy struct {
	nodes map[string]*Node
	order []string // insertion order of keys, root first
}

// Root returns the hierarchy's root node (the universal heuristic '*').
func (h *Hierarchy) Root() *Node { return h.nodes[grammar.RootKey] }

// Node returns the node with the given key, or nil.
func (h *Hierarchy) Node(key string) *Node { return h.nodes[key] }

// Len returns the number of nodes including the root.
func (h *Hierarchy) Len() int { return len(h.nodes) }

// Keys returns all node keys (root first, then insertion order).
func (h *Hierarchy) Keys() []string {
	out := make([]string, len(h.order))
	copy(out, h.order)
	return out
}

// NonRootKeys returns all keys except the root.
func (h *Hierarchy) NonRootKeys() []string {
	var out []string
	for _, k := range h.order {
		if k != grammar.RootKey {
			out = append(out, k)
		}
	}
	return out
}

// Contains reports whether the hierarchy holds the key.
func (h *Hierarchy) Contains(key string) bool {
	_, ok := h.nodes[key]
	return ok
}

// Add inserts a node for the heuristic with the given coverage if absent and
// returns it. Edges are not recomputed automatically; call LinkEdges after a
// batch of additions.
func (h *Hierarchy) Add(heur grammar.Heuristic, coverage []int) *Node {
	key := heur.Key()
	if n, ok := h.nodes[key]; ok {
		return n
	}
	n := &Node{Key: key, Heuristic: heur, Coverage: coverage}
	h.nodes[key] = n
	h.order = append(h.order, key)
	return n
}

// Config controls candidate generation.
type Config struct {
	// NumCandidates is k in Algorithm 2: how many candidate heuristics to
	// generate per iteration (the paper uses 10K).
	NumCandidates int
	// MaxRuleDepth drops candidates deeper than this many derivation rules
	// (0 = no limit).
	MaxRuleDepth int
	// MinCoverage drops candidates covering fewer sentences than this.
	MinCoverage int
	// Cleanup removes candidates that add no new positives relative to the
	// already-discovered set P (§3.2 cleanup pass).
	Cleanup bool
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{NumCandidates: 10000, MaxRuleDepth: 10, MinCoverage: 2, Cleanup: true}
}

// cand is one candidate heuristic scored by its overlap with the discovered
// positives (primary) and its total coverage (tie-break).
type cand struct {
	key     string
	overlap int
	total   int
}

// candHeap is a max-heap of candidates ordered by (overlap, total, key).
type candHeap []cand

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].overlap != h[j].overlap {
		return h[i].overlap > h[j].overlap
	}
	if h[i].total != h[j].total {
		return h[i].total > h[j].total
	}
	return h[i].key < h[j].key
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(cand)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// GenerateCandidates implements Algorithm 2: a greedy best-first expansion of
// the index starting from the root, repeatedly materializing the children of
// the best candidate so far (by coverage over the discovered positives P,
// with total coverage as tie-break) until k candidates are selected. The
// candidate list of the paper's pseudocode is kept as a max-heap, making each
// iteration logarithmic rather than a full re-sort.
func GenerateCandidates(ix *index.Index, positives map[int]bool, cfg Config) []string {
	k := cfg.NumCandidates
	if k <= 0 {
		k = 10000
	}
	score := func(key string) cand {
		return cand{
			key:     key,
			overlap: ix.CoverageOverlap(key, positives),
			total:   ix.Count(key),
		}
	}

	selected := make([]string, 0, k)
	inSelected := map[string]bool{grammar.RootKey: true}
	inCandidates := map[string]bool{}
	candidates := &candHeap{}
	heap.Init(candidates)

	eligible := func(key string) bool {
		if inSelected[key] || inCandidates[key] {
			return false
		}
		n := ix.Node(key)
		if n == nil {
			return false
		}
		if cfg.MaxRuleDepth > 0 && n.Heuristic.Depth() > cfg.MaxRuleDepth {
			return false
		}
		if cfg.MinCoverage > 0 && n.Count() < cfg.MinCoverage {
			return false
		}
		return true
	}

	recent := grammar.RootKey
	for len(selected) < k {
		// Add children of the most recently selected heuristic (line 3).
		for _, ck := range ix.Children(recent) {
			if eligible(ck) {
				inCandidates[ck] = true
				heap.Push(candidates, score(ck))
			}
		}
		if candidates.Len() == 0 {
			break
		}
		// Take the candidate with the highest coverage over P (lines 4-7).
		best := heap.Pop(candidates).(cand)
		delete(inCandidates, best.key)
		inSelected[best.key] = true
		selected = append(selected, best.key)
		recent = best.key
	}
	return selected
}

// Build arranges the candidate keys into a hierarchy following the index's
// parent/child relationships (§3.2 "Hierarchical Arrangement and edge
// discovery"). If cfg.Cleanup is set, candidates that add no new positives
// beyond P are dropped first.
func Build(ix *index.Index, candidateKeys []string, positives map[int]bool, cfg Config) *Hierarchy {
	h := &Hierarchy{nodes: make(map[string]*Node)}
	h.Add(grammar.Root(), ix.Root().Postings)

	for _, key := range candidateKeys {
		n := ix.Node(key)
		if n == nil {
			continue
		}
		if cfg.Cleanup && len(positives) > 0 && ix.NewCoverage(key, positives) == 0 {
			continue
		}
		h.Add(n.Heuristic, n.Postings)
	}
	h.LinkEdges(ix)
	return h
}

// LinkEdges recomputes parent/child edges between hierarchy nodes: a node's
// parent is its nearest materialized ancestor in the index (walking up
// grammatical parents), falling back to the root.
func (h *Hierarchy) LinkEdges(ix *index.Index) {
	for _, n := range h.nodes {
		n.Parents = n.Parents[:0]
		n.Children = n.Children[:0]
	}
	for _, key := range h.order {
		if key == grammar.RootKey {
			continue
		}
		n := h.nodes[key]
		parents := h.nearestAncestors(key, ix)
		for _, pk := range parents {
			p := h.nodes[pk]
			p.Children = append(p.Children, key)
			n.Parents = append(n.Parents, pk)
		}
	}
	for _, n := range h.nodes {
		sort.Strings(n.Parents)
		sort.Strings(n.Children)
	}
}

// nearestAncestors walks up the index's parent edges from key and returns the
// nearest ancestors that are materialized in the hierarchy (the root if none
// are found).
func (h *Hierarchy) nearestAncestors(key string, ix *index.Index) []string {
	found := map[string]bool{}
	visited := map[string]bool{key: true}
	frontier := ix.Parents(key)
	for len(frontier) > 0 && len(found) == 0 {
		var next []string
		for _, pk := range frontier {
			if visited[pk] {
				continue
			}
			visited[pk] = true
			if pk != key && h.Contains(pk) {
				found[pk] = true
				continue
			}
			next = append(next, ix.Parents(pk)...)
		}
		frontier = next
	}
	if len(found) == 0 {
		return []string{grammar.RootKey}
	}
	out := make([]string, 0, len(found))
	for k := range found {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Generate runs candidate generation and arrangement in one call (the
// "heuristic-hierarchy generation" box of Figure 4).
func Generate(ix *index.Index, positives map[int]bool, cfg Config) *Hierarchy {
	keys := GenerateCandidates(ix, positives, cfg)
	return Build(ix, keys, positives, cfg)
}
