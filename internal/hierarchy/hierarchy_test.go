package hierarchy

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/index"
	"repro/internal/sketch"
	"repro/internal/tokensregex"
)

func buildIndex(t *testing.T) (*corpus.Corpus, *index.Index) {
	t.Helper()
	c := corpus.New("h", "t")
	texts := []struct {
		text string
		gold corpus.Label
	}{
		{"what is the best way to get to the airport", corpus.Positive},
		{"what is the best way to get to the station", corpus.Positive},
		{"is there a shuttle to the airport", corpus.Positive},
		{"is there a shuttle to the hotel", corpus.Positive},
		{"the shuttle to the airport is free", corpus.Positive},
		{"what is the best way to order food", corpus.Negative},
		{"what is the best way to check in", corpus.Negative},
		{"can i order a pizza to my room", corpus.Negative},
		{"the wifi password is not working", corpus.Negative},
		{"is breakfast included with my room", corpus.Negative},
	}
	for _, s := range texts {
		c.Add(s.text, s.gold)
	}
	c.Preprocess(corpus.PreprocessOptions{})
	reg := grammar.NewRegistry(tokensregex.New())
	b := sketch.NewBuilder(reg, 4)
	ix := index.Build(c, b)
	return c, ix
}

func TestGenerateCandidatesPrefersOverlap(t *testing.T) {
	_, ix := buildIndex(t)
	// P = the two "best way to get to" sentences.
	p := map[int]bool{0: true, 1: true}
	cfg := Config{NumCandidates: 20, MaxRuleDepth: 4, MinCoverage: 2}
	keys := GenerateCandidates(ix, p, cfg)
	if len(keys) == 0 {
		t.Fatal("no candidates generated")
	}
	if len(keys) > 20 {
		t.Fatalf("generated %d candidates, budget 20", len(keys))
	}
	// The first candidate must overlap P (greedy best-first by overlap).
	first := keys[0]
	if ix.CoverageOverlap(first, p) == 0 {
		t.Errorf("first candidate %q has no overlap with P", first)
	}
	// No candidate may violate the constraints.
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Errorf("duplicate candidate %q", k)
		}
		seen[k] = true
		if ix.Count(k) < 2 {
			t.Errorf("candidate %q below MinCoverage", k)
		}
		if ix.Node(k).Heuristic.Depth() > 4 {
			t.Errorf("candidate %q exceeds MaxRuleDepth", k)
		}
		if k == grammar.RootKey {
			t.Error("root returned as candidate")
		}
	}
}

func TestGenerateCandidatesDefaultsAndExhaustion(t *testing.T) {
	_, ix := buildIndex(t)
	keys := GenerateCandidates(ix, nil, Config{NumCandidates: 1000000, MinCoverage: 2})
	// Exhausts the reachable index rather than looping forever.
	if len(keys) == 0 || len(keys) > ix.Len() {
		t.Errorf("exhaustive generation returned %d candidates (index %d)", len(keys), ix.Len())
	}
	// Zero config uses the 10K default without panicking.
	keys2 := GenerateCandidates(ix, nil, Config{})
	if len(keys2) == 0 {
		t.Error("default config generated nothing")
	}
}

func TestBuildHierarchyEdgesAndCleanup(t *testing.T) {
	_, ix := buildIndex(t)
	p := map[int]bool{0: true, 1: true}
	cfg := Config{NumCandidates: 50, MaxRuleDepth: 4, MinCoverage: 2, Cleanup: true}
	keys := GenerateCandidates(ix, p, cfg)
	h := Build(ix, keys, p, cfg)

	if h.Root() == nil {
		t.Fatal("hierarchy has no root")
	}
	if h.Len() < 2 {
		t.Fatalf("hierarchy too small: %d", h.Len())
	}
	for _, key := range h.NonRootKeys() {
		n := h.Node(key)
		if len(n.Parents) == 0 {
			t.Errorf("node %q has no parents", key)
		}
		// Cleanup: every surviving rule adds at least one new sentence.
		if ix.NewCoverage(key, p) == 0 {
			t.Errorf("node %q adds no new positives but survived cleanup", key)
		}
		// Edge symmetry and subset relation.
		for _, pk := range n.Parents {
			parent := h.Node(pk)
			if parent == nil {
				t.Fatalf("dangling parent %q of %q", pk, key)
			}
			found := false
			for _, ck := range parent.Children {
				if ck == key {
					found = true
				}
			}
			if !found {
				t.Errorf("edge asymmetry between %q and %q", key, pk)
			}
			if pk == grammar.RootKey {
				continue
			}
			pset := map[int]bool{}
			for _, id := range parent.Coverage {
				pset[id] = true
			}
			for _, id := range n.Coverage {
				if !pset[id] {
					t.Errorf("hierarchy parent %q does not cover %d covered by %q", pk, id, key)
				}
			}
		}
	}
}

func TestBuildSkipsUnknownKeys(t *testing.T) {
	_, ix := buildIndex(t)
	h := Build(ix, []string{"tokensregex:never seen phrase"}, nil, Config{})
	if h.Len() != 1 {
		t.Errorf("unknown key materialized: %d nodes", h.Len())
	}
}

func TestHierarchyAccessors(t *testing.T) {
	_, ix := buildIndex(t)
	cfg := DefaultConfig()
	cfg.NumCandidates = 30
	h := Generate(ix, map[int]bool{0: true}, cfg)
	if !h.Contains(grammar.RootKey) {
		t.Error("root missing")
	}
	if h.Node("nope") != nil {
		t.Error("Node(nope) != nil")
	}
	keys := h.Keys()
	if len(keys) != h.Len() {
		t.Errorf("Keys len %d != Len %d", len(keys), h.Len())
	}
	if keys[0] != grammar.RootKey {
		t.Errorf("first key = %q, want root", keys[0])
	}
	if len(h.NonRootKeys()) != h.Len()-1 {
		t.Error("NonRootKeys wrong size")
	}
	// Add is idempotent per key.
	n1 := h.Add(grammar.Root(), nil)
	n2 := h.Add(grammar.Root(), nil)
	if n1 != n2 {
		t.Error("Add duplicated the root")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumCandidates != 10000 || !cfg.Cleanup {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}
