package hierarchy

import (
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/grammar"
	"repro/internal/index"
	"repro/internal/sketch"
	"repro/internal/tokensregex"
)

var (
	genOnce sync.Once
	genIx   *index.Index
	genCorp *corpus.Corpus
	genErr  error
)

// genIndex builds (once) a TokensRegex index over the datagen directions
// corpus at half scale, the same corpus the core benchmarks use.
func genIndex(b *testing.B) *index.Index {
	b.Helper()
	genOnce.Do(func() {
		genCorp, genErr = datagen.ByName("directions", 0.5, 7)
		if genErr != nil {
			return
		}
		genCorp.Preprocess(corpus.PreprocessOptions{})
		reg := grammar.NewRegistry(tokensregex.New())
		genIx = index.Build(genCorp, sketch.NewBuilder(reg, 4))
		genIx.Prune(2)
	})
	if genErr != nil {
		b.Fatal(genErr)
	}
	return genIx
}

// benchPositives returns a positive set seeded from a common phrase.
func benchPositives(b *testing.B, ix *index.Index) map[int]bool {
	b.Helper()
	p := map[int]bool{}
	for _, id := range ix.Coverage("tokensregex:best way to") {
		p[id] = true
	}
	if len(p) == 0 {
		b.Fatal("empty benchmark positive set")
	}
	return p
}

// BenchmarkGenerateCandidates measures Algorithm 2 at the paper's 10K
// candidate count, the dominant per-step cost of the interactive loop.
func BenchmarkGenerateCandidates(b *testing.B) {
	ix := genIndex(b)
	p := benchPositives(b, ix)
	cfg := Config{NumCandidates: 10000, MaxRuleDepth: 8, MinCoverage: 2, Cleanup: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys := GenerateCandidates(ix, p, cfg)
		if len(keys) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkGenerate measures the full hierarchy generation (candidates +
// cleanup + edge linking).
func BenchmarkGenerate(b *testing.B) {
	ix := genIndex(b)
	p := benchPositives(b, ix)
	cfg := Config{NumCandidates: 10000, MaxRuleDepth: 8, MinCoverage: 2, Cleanup: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := Generate(ix, p, cfg)
		if h.Len() == 0 {
			b.Fatal("empty hierarchy")
		}
	}
}

// BenchmarkLinkEdges isolates the edge-linking pass inside regeneration
// (nearest-ancestor resolution via the index's child lists).
func BenchmarkLinkEdges(b *testing.B) {
	ix := genIndex(b)
	p := benchPositives(b, ix)
	cfg := Config{NumCandidates: 10000, MaxRuleDepth: 8, MinCoverage: 2, Cleanup: true}
	h := Generate(ix, p, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.LinkEdges(ix)
	}
}
