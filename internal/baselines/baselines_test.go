package baselines

import (
	"testing"

	"repro/internal/classifier"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/grammar"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/sketch"
	"repro/internal/tokensregex"
	"repro/internal/traversal"
)

func smallCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := datagen.ByName("directions", 0.04, 13)
	if err != nil {
		t.Fatal(err)
	}
	c.Preprocess(corpus.PreprocessOptions{})
	return c
}

func buildState(t *testing.T, c *corpus.Corpus, positives map[int]bool) *traversal.State {
	t.Helper()
	reg := grammar.NewRegistry(tokensregex.New())
	ix := index.Build(c, sketch.NewBuilder(reg, 4))
	ix.Prune(2)
	h := hierarchy.Generate(ix, positives, hierarchy.Config{NumCandidates: 300, MaxRuleDepth: 5, MinCoverage: 2, Cleanup: true})
	scores := make([]float64, c.Len())
	for id, s := range c.Sentences {
		if s.Gold == corpus.Positive {
			scores[id] = 0.9
		} else {
			scores[id] = 0.1
		}
	}
	return &traversal.State{
		Hierarchy: h,
		Index:     ix,
		Positives: positives,
		Scores:    scores,
		Queried:   map[string]bool{},
	}
}

func TestHighPPicksPreciseSmallRules(t *testing.T) {
	c := smallCorpus(t)
	st := buildState(t, c, map[int]bool{})
	hp := NewHighP()
	if hp.Name() != "highP" {
		t.Errorf("Name = %q", hp.Name())
	}
	key, ok := hp.Next(st)
	if !ok {
		t.Fatal("HighP proposed nothing")
	}
	// With a perfect classifier the HighP pick has average benefit close to
	// the maximum available.
	bestAvg := 0.0
	for _, k := range st.Hierarchy.NonRootKeys() {
		if a := st.AvgBenefitOf(k); a > bestAvg {
			bestAvg = a
		}
	}
	if st.AvgBenefitOf(key) < bestAvg-1e-9 {
		t.Errorf("HighP pick %q has avg benefit %.3f < max %.3f", key, st.AvgBenefitOf(key), bestAvg)
	}
	// Queried rules are skipped.
	st.Queried[key] = true
	key2, ok := hp.Next(st)
	if ok && key2 == key {
		t.Error("HighP repeated a queried rule")
	}
	hp.Feedback(st, key, true)
	hp.Reseed(st, key)
}

func TestHighCPicksLargestCoverage(t *testing.T) {
	c := smallCorpus(t)
	st := buildState(t, c, map[int]bool{})
	hc := NewHighC()
	if hc.Name() != "highC" {
		t.Errorf("Name = %q", hc.Name())
	}
	key, ok := hc.Next(st)
	if !ok {
		t.Fatal("HighC proposed nothing")
	}
	got := len(st.Hierarchy.Node(key).Coverage)
	for _, k := range st.Hierarchy.NonRootKeys() {
		if n := st.Hierarchy.Node(k); len(n.Coverage) > got {
			t.Errorf("HighC pick %q covers %d but %q covers %d", key, got, k, len(n.Coverage))
			break
		}
	}
	hc.Feedback(st, key, false)
	hc.Reseed(st, key)
}

func TestHighCAndHighPExhaustion(t *testing.T) {
	c := smallCorpus(t)
	st := buildState(t, c, map[int]bool{})
	// Mark everything as queried: nothing to propose.
	for _, k := range st.Hierarchy.NonRootKeys() {
		st.Queried[k] = true
	}
	if _, ok := NewHighP().Next(st); ok {
		t.Error("HighP proposed from an exhausted hierarchy")
	}
	if _, ok := NewHighC().Next(st); ok {
		t.Error("HighC proposed from an exhausted hierarchy")
	}
}

func instanceCfg(seed int64) InstanceLabelingConfig {
	return InstanceLabelingConfig{
		Budget:       30,
		Classifier:   classifier.Config{Epochs: 6, LearningRate: 0.3, Seed: seed},
		Kind:         classifier.KindLogReg,
		RetrainEvery: 5,
		EvalEvery:    10,
		Seed:         seed,
	}
}

func TestActiveLearningProducesCurves(t *testing.T) {
	c := smallCorpus(t)
	emb := embedding.Train(c.TokenizedSentences(), embedding.Config{Dim: 16, Window: 3, MinCount: 2, Seed: 1})
	pos := c.Positives()
	cfg := instanceCfg(1)
	cfg.SeedPositiveIDs = pos[:2]
	res := ActiveLearning(c, emb, cfg)
	if len(res.FScore.Points) == 0 || len(res.Coverage.Points) == 0 {
		t.Fatal("empty curves")
	}
	for _, p := range res.FScore.Points {
		if p.Value < 0 || p.Value > 1 {
			t.Errorf("F-score out of range: %v", p)
		}
	}
	// Coverage of instance labeling is bounded by budget/positives and must
	// be far below 1 on an imbalanced corpus with a tiny budget.
	if res.Coverage.Final() > 0.9 {
		t.Errorf("AL coverage suspiciously high: %f", res.Coverage.Final())
	}
	if res.LabeledPositives < 2 {
		t.Errorf("seed positives lost: %d", res.LabeledPositives)
	}
}

func TestKeywordSamplingFindsMorePositivesThanRandom(t *testing.T) {
	c := smallCorpus(t)
	cfg := instanceCfg(2)
	cfg.Budget = 40
	keywords := []string{"shuttle", "bart", "airport", "bus", "way", "directions", "taxi", "train", "uber", "station"}
	ks := KeywordSampling(c, nil, keywords, cfg)
	rs := RandomSampling(c, nil, instanceCfgWithBudget(3, 40))
	if ks.LabeledPositives <= rs.LabeledPositives {
		t.Errorf("keyword sampling found %d positives, random found %d — expected keyword filtering to help",
			ks.LabeledPositives, rs.LabeledPositives)
	}
}

func instanceCfgWithBudget(seed int64, budget int) InstanceLabelingConfig {
	cfg := instanceCfg(seed)
	cfg.Budget = budget
	return cfg
}

func TestKeywordSamplingEmptyKeywordsFallsBack(t *testing.T) {
	c := smallCorpus(t)
	res := KeywordSampling(c, nil, nil, instanceCfgWithBudget(4, 10))
	if len(res.Coverage.Points) == 0 {
		t.Error("no curve points with empty keyword list")
	}
}

func TestInstanceRunBudgetExhaustsCorpus(t *testing.T) {
	// A budget larger than the corpus stops once everything is labeled.
	c := corpus.New("tiny", "t")
	c.Add("the shuttle to the airport", corpus.Positive)
	c.Add("order a pizza", corpus.Negative)
	c.Add("late checkout please", corpus.Negative)
	c.Preprocess(corpus.PreprocessOptions{})
	cfg := instanceCfgWithBudget(5, 50)
	cfg.EvalEvery = 1
	res := RandomSampling(c, nil, cfg)
	if res.LabeledPositives != 1 {
		t.Errorf("LabeledPositives = %d, want 1", res.LabeledPositives)
	}
}
