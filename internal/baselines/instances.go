package baselines

import (
	"math/rand"
	"sort"

	"repro/internal/classifier"
	"repro/internal/corpus"
	"repro/internal/embedding"
	"repro/internal/eval"
)

// InstanceLabelingConfig configures the Active Learning and Keyword Sampling
// baselines, which spend their budget labeling individual sentences rather
// than verifying rules.
type InstanceLabelingConfig struct {
	// Budget is the number of sentences the annotator labels.
	Budget int
	// SeedPositiveIDs optionally pre-labels a few positives (to match the
	// initialization of the Darwin runs being compared).
	SeedPositiveIDs []int
	// Classifier and Embedding configure the model trained on the labels.
	Classifier classifier.Config
	Kind       classifier.Kind
	Embedding  embedding.Config
	// RetrainEvery re-trains the classifier after this many new labels
	// (1 = after every label, as in the paper's AL baseline).
	RetrainEvery int
	// EvalEvery records an F-score point every this many questions.
	EvalEvery int
	// Seed drives sampling.
	Seed int64
}

// Result is the outcome of an instance-labeling baseline run.
type Result struct {
	// FScore is the per-question best-F1 curve of the trained classifier.
	FScore eval.Curve
	// Coverage is the per-question fraction of gold positives among the
	// labeled instances (instance labeling discovers positives one at a
	// time, which is why these curves stay low in the paper).
	Coverage eval.Curve
	// LabeledPositives is the number of positives found within the budget.
	LabeledPositives int
}

// instanceRun factors the shared loop of the AL and KS baselines: pick the
// next sentence to label according to `select`, reveal its gold label,
// periodically retrain and evaluate.
func instanceRun(c *corpus.Corpus, emb *embedding.Model, cfg InstanceLabelingConfig,
	selectNext func(sc *classifier.SentenceClassifier, labeled map[int]bool, rng *rand.Rand) int) Result {

	if cfg.Budget <= 0 {
		cfg.Budget = 100
	}
	if cfg.RetrainEvery <= 0 {
		cfg.RetrainEvery = 1
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	sc := classifier.NewSentenceClassifier(c, emb, cfg.Classifier, cfg.Kind)
	labeled := map[int]bool{}   // all labeled sentence IDs
	positives := map[int]bool{} // labeled positives
	for _, id := range cfg.SeedPositiveIDs {
		if s := c.Sentence(id); s != nil {
			labeled[id] = true
			if s.Gold == corpus.Positive {
				positives[id] = true
			}
		}
	}
	retrain := func() {
		if len(positives) > 0 {
			_ = sc.TrainFromPositives(positives)
		}
	}
	retrain()

	res := Result{FScore: eval.Curve{Name: "fscore"}, Coverage: eval.Curve{Name: "coverage"}}
	totalPos := c.NumPositives()
	for q := 1; q <= cfg.Budget; q++ {
		id := selectNext(sc, labeled, rng)
		if id < 0 {
			break
		}
		labeled[id] = true
		if c.Sentence(id).Gold == corpus.Positive {
			positives[id] = true
		}
		if q%cfg.RetrainEvery == 0 {
			retrain()
		}
		if q%cfg.EvalEvery == 0 || q == cfg.Budget {
			f1 := 0.0
			if sc.Trained() {
				f1, _ = eval.BestF1(c, sc.ScoreAll())
			}
			res.FScore.Points = append(res.FScore.Points, eval.CurvePoint{Questions: q, Value: f1})
			cov := 0.0
			if totalPos > 0 {
				cov = float64(len(positives)) / float64(totalPos)
			}
			res.Coverage.Points = append(res.Coverage.Points, eval.CurvePoint{Questions: q, Value: cov})
		}
	}
	res.LabeledPositives = len(positives)
	return res
}

// ActiveLearning runs the uncertainty-sampling baseline of §4.4: each
// question labels the unlabeled sentence with the highest prediction entropy.
func ActiveLearning(c *corpus.Corpus, emb *embedding.Model, cfg InstanceLabelingConfig) Result {
	return instanceRun(c, emb, cfg, func(sc *classifier.SentenceClassifier, labeled map[int]bool, rng *rand.Rand) int {
		best, bestEntropy := -1, -1.0
		if !sc.Trained() {
			// Before the first retrain, fall back to random selection.
			return randomUnlabeled(c.Len(), labeled, rng)
		}
		for id := 0; id < c.Len(); id++ {
			if labeled[id] {
				continue
			}
			e := sc.Entropy(id)
			if e > bestEntropy {
				best, bestEntropy = id, e
			}
		}
		return best
	})
}

// KeywordSampling runs the KS baseline of §4.4: the corpus is filtered to
// sentences containing at least one of the task keywords supplied by an
// annotator, and the budget is spent labeling uniform samples from the
// filtered set.
func KeywordSampling(c *corpus.Corpus, emb *embedding.Model, keywords []string, cfg InstanceLabelingConfig) Result {
	kw := map[string]bool{}
	for _, k := range keywords {
		kw[k] = true
	}
	var filtered []int
	for _, s := range c.Sentences {
		for _, tok := range s.Tokens {
			if kw[tok] {
				filtered = append(filtered, s.ID)
				break
			}
		}
	}
	sort.Ints(filtered)
	return instanceRun(c, emb, cfg, func(sc *classifier.SentenceClassifier, labeled map[int]bool, rng *rand.Rand) int {
		// Uniform sample from the filtered subset; fall back to the whole
		// corpus when the filtered pool is exhausted.
		var pool []int
		for _, id := range filtered {
			if !labeled[id] {
				pool = append(pool, id)
			}
		}
		if len(pool) == 0 {
			return randomUnlabeled(c.Len(), labeled, rng)
		}
		return pool[rng.Intn(len(pool))]
	})
}

// RandomSampling labels uniformly random sentences; it is the naive floor the
// other baselines are compared against in ablations.
func RandomSampling(c *corpus.Corpus, emb *embedding.Model, cfg InstanceLabelingConfig) Result {
	return instanceRun(c, emb, cfg, func(sc *classifier.SentenceClassifier, labeled map[int]bool, rng *rand.Rand) int {
		return randomUnlabeled(c.Len(), labeled, rng)
	})
}

func randomUnlabeled(n int, labeled map[int]bool, rng *rand.Rand) int {
	if len(labeled) >= n {
		return -1
	}
	for {
		id := rng.Intn(n)
		if !labeled[id] {
			return id
		}
	}
}
