// Package baselines implements the comparison techniques of §4.3 and §4.4:
// the HighP and HighC rule-selection baselines (plugged into the Darwin
// engine as alternative traversal strategies) and the Active Learning and
// Keyword Sampling instance-labeling baselines.
package baselines

import (
	"repro/internal/grammar"
	"repro/internal/traversal"
)

// HighP selects the rule the classifier expects to be most precise (highest
// average benefit), regardless of how many new sentences it covers. As the
// paper observes, this tends to pick rules with very small coverage.
type HighP struct {
	// MinNewCoverage skips rules adding fewer than this many new sentences
	// (1 keeps the baseline from proposing fully-covered rules forever).
	MinNewCoverage int
}

// NewHighP returns the HighP baseline.
func NewHighP() *HighP { return &HighP{MinNewCoverage: 1} }

// Name implements traversal.Traversal.
func (h *HighP) Name() string { return "highP" }

// Next implements traversal.Traversal.
func (h *HighP) Next(st *traversal.State) (string, bool) {
	best := ""
	bestAvg := -1.0
	bestCov := -1
	minNew := h.MinNewCoverage
	if minNew <= 0 {
		minNew = 1
	}
	for _, key := range st.Hierarchy.NonRootKeys() {
		if st.Queried[key] || key == grammar.RootKey {
			continue
		}
		n := st.Hierarchy.Node(key)
		if n == nil {
			continue
		}
		newCov := 0
		for _, id := range n.Coverage {
			if !st.Positives[id] {
				newCov++
			}
		}
		if newCov < minNew {
			continue
		}
		avg := traversal.AvgBenefit(n.Coverage, st.Positives, st.Scores)
		// Ties are broken toward SMALLER coverage: HighP optimizes expected
		// precision irrespective of coverage, which is exactly why the paper
		// finds it picks rules that label very few new sentences.
		if avg > bestAvg || (avg == bestAvg && (bestCov < 0 || newCov < bestCov)) ||
			(avg == bestAvg && newCov == bestCov && (best == "" || key < best)) {
			best, bestAvg, bestCov = key, avg, newCov
		}
	}
	return best, best != ""
}

// Feedback implements traversal.Traversal (stateless).
func (h *HighP) Feedback(*traversal.State, string, bool) {}

// Reseed implements traversal.Traversal (no-op).
func (h *HighP) Reseed(*traversal.State, string) {}

// HighC selects the rule with the largest coverage irrespective of its
// expected precision. The paper reports that most of its proposals are
// rejected by the oracle.
type HighC struct{}

// NewHighC returns the HighC baseline.
func NewHighC() *HighC { return &HighC{} }

// Name implements traversal.Traversal.
func (h *HighC) Name() string { return "highC" }

// Next implements traversal.Traversal.
func (h *HighC) Next(st *traversal.State) (string, bool) {
	best := ""
	bestNew := 0
	for _, key := range st.Hierarchy.NonRootKeys() {
		if st.Queried[key] || key == grammar.RootKey {
			continue
		}
		n := st.Hierarchy.Node(key)
		if n == nil {
			continue
		}
		newCov := 0
		for _, id := range n.Coverage {
			if !st.Positives[id] {
				newCov++
			}
		}
		if newCov > bestNew || (newCov == bestNew && newCov > 0 && (best == "" || key < best)) {
			best, bestNew = key, newCov
		}
	}
	return best, best != ""
}

// Feedback implements traversal.Traversal (stateless).
func (h *HighC) Feedback(*traversal.State, string, bool) {}

// Reseed implements traversal.Traversal (no-op).
func (h *HighC) Reseed(*traversal.State, string) {}
