// Package faultinject is the chaos toolbox the replication and failover
// tests are proven with: seeded, deterministic fault injectors for the three
// failure classes the paper's serving tier has to survive — lossy/slow
// networks (Transport), hard partitions (Proxy), and torn journal tails
// (TearTail). Everything is driven by an explicit *rand.Rand seed so a
// failing chaos run replays bit-identically from its seed.
package faultinject

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"time"
)

// Transport is a deterministic chaos http.RoundTripper: with probability
// DropProb a request fails with a connection-reset-flavored error before it
// reaches the wire, and surviving requests are delayed by a uniform random
// duration up to MaxDelay. Wrap a client's transport with it to test retry
// and timeout policies without a real bad network.
type Transport struct {
	// Base performs the real round trips (http.DefaultTransport when nil).
	Base http.RoundTripper
	// DropProb in [0,1] is the per-request probability of an injected
	// transport error.
	DropProb float64
	// MaxDelay bounds the injected per-request latency (0 injects none).
	MaxDelay time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewTransport wraps base with seeded drop/delay injection.
func NewTransport(base http.RoundTripper, seed int64, dropProb float64, maxDelay time.Duration) *Transport {
	return &Transport{Base: base, DropProb: dropProb, MaxDelay: maxDelay, rng: rand.New(rand.NewSource(seed))}
}

// draw samples the injected fate of one request under the lock: whether it
// drops, and how long it is delayed.
func (t *Transport) draw() (drop bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(1))
	}
	drop = t.DropProb > 0 && t.rng.Float64() < t.DropProb
	if t.MaxDelay > 0 {
		delay = time.Duration(t.rng.Int63n(int64(t.MaxDelay)))
	}
	return drop, delay
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	drop, delay := t.draw()
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if drop {
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: fmt.Errorf("faultinject: connection reset (injected)")}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// Proxy is a TCP forwarder with a partition switch: it listens on its own
// address and pipes each accepted connection to the target, until Partition
// severs every live connection and refuses new ones. Pointing a router at a
// shard through a Proxy makes "network partition" a one-call operation in a
// test, distinct from killing the shard — the shard stays up, annotating,
// and (wrongly) believing it is primary.
type Proxy struct {
	ln     net.Listener
	target string

	mu          sync.Mutex
	partitioned bool
	conns       map[net.Conn]struct{}
	closed      bool
}

// NewProxy starts a proxy on addr (e.g. "127.0.0.1:0") forwarding to target.
func NewProxy(addr, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	go p.accept()
	return p, nil
}

// Addr is the proxy's listen address — what the client under test dials.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is Addr as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Partition severs all live connections and refuses new ones until Heal.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
}

// Heal ends the partition; new connections flow again.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// Close shuts the proxy down for good.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.Partition()
}

func (p *Proxy) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.partitioned || p.closed {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.mu.Unlock()
		go p.pipe(conn)
	}
}

func (p *Proxy) pipe(client net.Conn) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	server, err := (&net.Dialer{}).DialContext(ctx, "tcp", p.target)
	cancel()
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	if p.partitioned || p.closed {
		p.mu.Unlock()
		client.Close()
		server.Close()
		return
	}
	p.conns[client] = struct{}{}
	p.conns[server] = struct{}{}
	p.mu.Unlock()

	done := make(chan struct{}, 2)
	go func() { io.Copy(server, client); done <- struct{}{} }()
	go func() { io.Copy(client, server); done <- struct{}{} }()
	<-done
	client.Close()
	server.Close()
	<-done
	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, server)
	p.mu.Unlock()
}

// TearTail truncates the file to cut the last n bytes off — the on-disk
// shape of a crash mid-append (a torn journal record). n larger than the
// file empties it.
func TearTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}
