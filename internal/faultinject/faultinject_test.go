package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestTransportDeterministicDrops(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer backend.Close()

	outcomes := func(seed int64) []bool {
		tr := NewTransport(nil, seed, 0.5, 0)
		hc := &http.Client{Transport: tr}
		var out []bool
		for i := 0; i < 32; i++ {
			resp, err := hc.Get(backend.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}

	a, b := outcomes(42), outcomes(42)
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: same seed produced different outcomes (%v vs %v)", i, a[i], b[i])
		}
		if !a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("drop prob 0.5 over %d requests produced %d drops — injector not sampling", len(a), drops)
	}
}

func TestProxyPartitionAndHeal(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("through"))
	}))
	defer backend.Close()

	p, err := NewProxy("127.0.0.1:0", backend.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	hc := &http.Client{Timeout: 2 * time.Second}
	get := func() error {
		resp, err := hc.Get(p.URL())
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, err = io.ReadAll(resp.Body)
		return err
	}

	if err := get(); err != nil {
		t.Fatalf("healthy proxy: %v", err)
	}
	p.Partition()
	if err := get(); err == nil {
		t.Fatal("partitioned proxy served a request")
	}
	p.Heal()
	if err := get(); err != nil {
		t.Fatalf("healed proxy: %v", err)
	}
}

func TestTearTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearTail(path, 4); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "012345" {
		t.Fatalf("torn tail: got %q, want %q", got, "012345")
	}
	if err := TearTail(path, 100); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if len(got) != 0 {
		t.Fatalf("over-tear left %d bytes", len(got))
	}
}
