// Package corpus defines the sentence and corpus containers shared by every
// component of the pipeline: the index, the rule grammars, the classifier,
// the oracle and the dataset generators.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/depparse"
	"repro/internal/postag"
	"repro/internal/textproc"
)

// Label is the ground-truth label of a sentence for the current labeling
// task. The paper's tasks are binary (positive vs negative instances).
type Label int8

// Label values.
const (
	Negative Label = 0
	Positive Label = 1
)

// Sentence is a single, preprocessed sentence of the corpus.
type Sentence struct {
	// ID is the dense index of the sentence within its corpus.
	ID int
	// Text is the original sentence text.
	Text string
	// Tokens are the normalized tokens of the sentence.
	Tokens []string
	// Tags are the Universal POS tags, parallel to Tokens.
	Tags []postag.Tag
	// Tree is the dependency parse (nil until Preprocess is called with
	// parsing enabled).
	Tree *depparse.Tree
	// Gold is the ground-truth label used by the simulated oracle and for
	// evaluation; it is never read by the Darwin engine itself.
	Gold Label
}

// Corpus is a collection of sentences for one labeling task.
type Corpus struct {
	// Name identifies the dataset (e.g. "directions").
	Name string
	// Task is a short description of the labeling task.
	Task string
	// Sentences holds all sentences, indexed by their ID.
	Sentences []*Sentence
}

// New creates an empty corpus with the given name and task description.
func New(name, task string) *Corpus {
	return &Corpus{Name: name, Task: task}
}

// Add appends a raw sentence with a gold label and returns the new Sentence.
// Preprocessing (tokens, tags, parse) is done lazily by Preprocess.
func (c *Corpus) Add(text string, gold Label) *Sentence {
	s := &Sentence{ID: len(c.Sentences), Text: text, Gold: gold}
	c.Sentences = append(c.Sentences, s)
	return s
}

// Len returns the number of sentences.
func (c *Corpus) Len() int { return len(c.Sentences) }

// Sentence returns the sentence with the given ID, or nil if out of range.
func (c *Corpus) Sentence(id int) *Sentence {
	if id < 0 || id >= len(c.Sentences) {
		return nil
	}
	return c.Sentences[id]
}

// PreprocessOptions controls which preprocessing stages run.
type PreprocessOptions struct {
	// Parse enables dependency parsing (needed for the TreeMatch grammar).
	Parse bool
	// Tagger optionally overrides the default POS tagger.
	Tagger *postag.Tagger
}

// Preprocess tokenizes, POS-tags and (optionally) parses every sentence that
// has not been preprocessed yet. It is idempotent.
func (c *Corpus) Preprocess(opts PreprocessOptions) {
	c.PreprocessFrom(0, opts)
}

// PreprocessFrom preprocesses only the sentences with ID >= from — the newly
// ingested tail of a live corpus. Same semantics as Preprocess otherwise.
func (c *Corpus) PreprocessFrom(from int, opts PreprocessOptions) {
	var tok textproc.Tokenizer
	tagger := opts.Tagger
	if tagger == nil {
		tagger = postag.New()
	}
	if from < 0 {
		from = 0
	}
	for _, s := range c.Sentences[min(from, len(c.Sentences)):] {
		if s.Tokens == nil {
			s.Tokens = tok.TokenizeWords(s.Text)
		}
		if s.Tags == nil {
			s.Tags = tagger.TagSentence(s.Tokens)
		}
		if opts.Parse && s.Tree == nil {
			s.Tree = depparse.ParseTagged(s.Tokens, s.Tags)
		}
	}
}

// View returns an immutable snapshot view of the corpus: a corpus value over
// exactly the sentences present now, with the slice capacity clipped so later
// appends to the live corpus never alias into it. Published sentences are
// never mutated after preprocessing, so a view is safe for lock-free reads
// (exports, labeling jobs, baselines) while the live corpus keeps growing.
// Callers that grow the corpus concurrently must take the view under the
// same lock that guards Add.
func (c *Corpus) View() *Corpus {
	n := len(c.Sentences)
	return &Corpus{Name: c.Name, Task: c.Task, Sentences: c.Sentences[:n:n]}
}

// Positives returns the IDs of all sentences with a positive gold label.
func (c *Corpus) Positives() []int {
	var out []int
	for _, s := range c.Sentences {
		if s.Gold == Positive {
			out = append(out, s.ID)
		}
	}
	return out
}

// NumPositives returns the number of gold-positive sentences.
func (c *Corpus) NumPositives() int {
	n := 0
	for _, s := range c.Sentences {
		if s.Gold == Positive {
			n++
		}
	}
	return n
}

// PositiveRate returns the fraction of gold-positive sentences.
func (c *Corpus) PositiveRate() float64 {
	if len(c.Sentences) == 0 {
		return 0
	}
	return float64(c.NumPositives()) / float64(len(c.Sentences))
}

// Stats summarizes a corpus for Table 1.
type Stats struct {
	Name        string
	Sentences   int
	PositivePct float64
	Task        string
	AvgTokens   float64
	VocabSize   int
}

// ComputeStats returns the Table 1 style statistics of the corpus. It assumes
// Preprocess has been called (otherwise token stats are zero).
func (c *Corpus) ComputeStats() Stats {
	vocab := map[string]struct{}{}
	totalToks := 0
	for _, s := range c.Sentences {
		totalToks += len(s.Tokens)
		for _, t := range s.Tokens {
			vocab[t] = struct{}{}
		}
	}
	avg := 0.0
	if len(c.Sentences) > 0 {
		avg = float64(totalToks) / float64(len(c.Sentences))
	}
	return Stats{
		Name:        c.Name,
		Sentences:   len(c.Sentences),
		PositivePct: c.PositiveRate() * 100,
		Task:        c.Task,
		AvgTokens:   avg,
		VocabSize:   len(vocab),
	}
}

// TokenizedSentences returns the token slices of all sentences, for embedding
// training.
func (c *Corpus) TokenizedSentences() [][]string {
	out := make([][]string, len(c.Sentences))
	for i, s := range c.Sentences {
		out[i] = s.Tokens
	}
	return out
}

// SampleIDs returns n sentence IDs sampled uniformly at random without
// replacement using rng. If n exceeds the corpus size, all IDs are returned
// (shuffled).
func (c *Corpus) SampleIDs(n int, rng *rand.Rand) []int {
	ids := make([]int, len(c.Sentences))
	for i := range ids {
		ids[i] = i
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if n < len(ids) {
		ids = ids[:n]
	}
	sort.Ints(ids)
	return ids
}

// SamplePositiveIDs returns up to n gold-positive sentence IDs sampled
// uniformly without replacement.
func (c *Corpus) SamplePositiveIDs(n int, rng *rand.Rand) []int {
	pos := c.Positives()
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	if n < len(pos) {
		pos = pos[:n]
	}
	sort.Ints(pos)
	return pos
}

// SampleBiasedIDs returns up to n sentence IDs sampled uniformly from the
// sentences that do NOT contain the given token. This reproduces the biased
// seed-set construction of Figure 8 (e.g. withhold "shuttle" or "composer").
func (c *Corpus) SampleBiasedIDs(n int, withholdToken string, rng *rand.Rand) []int {
	var eligible []int
	for _, s := range c.Sentences {
		if !containsToken(s.Tokens, withholdToken) {
			eligible = append(eligible, s.ID)
		}
	}
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	if n < len(eligible) {
		eligible = eligible[:n]
	}
	sort.Ints(eligible)
	return eligible
}

func containsToken(tokens []string, tok string) bool {
	for _, t := range tokens {
		if t == tok {
			return true
		}
	}
	return false
}

// GoldOf returns the gold labels of the given sentence IDs.
func (c *Corpus) GoldOf(ids []int) []Label {
	out := make([]Label, len(ids))
	for i, id := range ids {
		out[i] = c.Sentences[id].Gold
	}
	return out
}

// String implements fmt.Stringer for debugging.
func (c *Corpus) String() string {
	return fmt.Sprintf("%s: %d sentences, %.1f%% positive (%s)",
		c.Name, c.Len(), c.PositiveRate()*100, c.Task)
}
