package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonlRecord is the on-disk representation of one sentence in JSONL format.
type jsonlRecord struct {
	Text  string `json:"text"`
	Label int    `json:"label"`
}

// jsonlHeader is the first line of a corpus JSONL file, carrying corpus
// metadata.
type jsonlHeader struct {
	Corpus string `json:"corpus"`
	Task   string `json:"task"`
}

// WriteJSONL writes the corpus to w as JSON lines: a header line followed by
// one record per sentence.
func (c *Corpus) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{Corpus: c.Name, Task: c.Task}); err != nil {
		return fmt.Errorf("write corpus header: %w", err)
	}
	for _, s := range c.Sentences {
		rec := jsonlRecord{Text: s.Text, Label: int(s.Gold)}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("write sentence %d: %w", s.ID, err)
		}
	}
	return bw.Flush()
}

// SaveJSONL writes the corpus to the file at path, creating or truncating it.
func (c *Corpus) SaveJSONL(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := c.WriteJSONL(f); err != nil {
		return err
	}
	return f.Close()
}

// labeledRecord is the on-disk representation of one sentence labeled by a
// discovery run: the sentence and whether it landed in the discovered
// positive set P.
type labeledRecord struct {
	ID    int    `json:"id"`
	Text  string `json:"text"`
	Label int    `json:"label"`
}

// WriteLabeledJSONL writes the corpus to w as JSON lines labeled by the given
// positive set: one {"id","text","label"} record per sentence, label 1 iff
// the sentence ID is in positives. This is the export format of a discovery
// session — the weakly labeled training set the accepted rules produce.
func (c *Corpus) WriteLabeledJSONL(w io.Writer, positives map[int]bool) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range c.Sentences {
		rec := labeledRecord{ID: s.ID, Text: s.Text}
		if positives[s.ID] {
			rec.Label = 1
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("write sentence %d: %w", s.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a corpus written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Corpus, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("read corpus header: %w", err)
		}
		return nil, fmt.Errorf("empty corpus file")
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("parse corpus header: %w", err)
	}
	c := New(hdr.Corpus, hdr.Task)
	line := 1
	for sc.Scan() {
		line++
		var rec jsonlRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("parse line %d: %w", line, err)
		}
		c.Add(rec.Text, Label(rec.Label))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read corpus: %w", err)
	}
	return c, nil
}

// LoadJSONL reads a corpus from the file at path.
func LoadJSONL(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	return ReadJSONL(f)
}
