package corpus

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTestCorpus() *Corpus {
	c := New("test", "intent: directions")
	c.Add("What is the best way to get to SFO airport?", Positive)
	c.Add("Is there a bart from SFO to the hotel?", Positive)
	c.Add("What is the best way to check in there?", Negative)
	c.Add("Is Uber the fastest way to get to the airport?", Positive)
	c.Add("Would Uber Eats be the fastest way to order?", Negative)
	c.Add("What is the best way to order food from you?", Negative)
	c.Add("Is there a shuttle to the airport?", Positive)
	c.Add("Can I get a late checkout?", Negative)
	return c
}

func TestCorpusBasics(t *testing.T) {
	c := buildTestCorpus()
	if c.Len() != 8 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.NumPositives(); got != 4 {
		t.Errorf("NumPositives = %d, want 4", got)
	}
	if got := c.PositiveRate(); got != 0.5 {
		t.Errorf("PositiveRate = %f, want 0.5", got)
	}
	if s := c.Sentence(0); s == nil || s.ID != 0 {
		t.Error("Sentence(0) wrong")
	}
	if s := c.Sentence(100); s != nil {
		t.Error("Sentence(100) should be nil")
	}
	if s := c.Sentence(-1); s != nil {
		t.Error("Sentence(-1) should be nil")
	}
	pos := c.Positives()
	if len(pos) != 4 {
		t.Errorf("Positives = %v", pos)
	}
}

func TestPreprocessIdempotent(t *testing.T) {
	c := buildTestCorpus()
	c.Preprocess(PreprocessOptions{Parse: true})
	s := c.Sentence(0)
	if len(s.Tokens) == 0 || len(s.Tags) != len(s.Tokens) || s.Tree == nil {
		t.Fatalf("preprocess incomplete: %+v", s)
	}
	toks := s.Tokens
	c.Preprocess(PreprocessOptions{Parse: true})
	if &toks[0] != &c.Sentence(0).Tokens[0] {
		t.Error("Preprocess re-tokenized an already-processed sentence")
	}
	for _, s := range c.Sentences {
		if err := s.Tree.Validate(); err != nil {
			t.Errorf("sentence %d tree invalid: %v", s.ID, err)
		}
	}
}

func TestPreprocessWithoutParse(t *testing.T) {
	c := buildTestCorpus()
	c.Preprocess(PreprocessOptions{})
	if c.Sentence(0).Tree != nil {
		t.Error("Tree built without Parse option")
	}
	if len(c.Sentence(0).Tokens) == 0 {
		t.Error("tokens missing")
	}
}

func TestComputeStats(t *testing.T) {
	c := buildTestCorpus()
	c.Preprocess(PreprocessOptions{})
	st := c.ComputeStats()
	if st.Sentences != 8 || st.PositivePct != 50 {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgTokens <= 0 || st.VocabSize <= 0 {
		t.Errorf("token stats not computed: %+v", st)
	}
}

func TestSampleIDs(t *testing.T) {
	c := buildTestCorpus()
	rng := rand.New(rand.NewSource(1))
	ids := c.SampleIDs(3, rng)
	if len(ids) != 3 {
		t.Fatalf("SampleIDs len = %d", len(ids))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 0 || id >= c.Len() || seen[id] {
			t.Errorf("bad sample id %d", id)
		}
		seen[id] = true
	}
	all := c.SampleIDs(100, rng)
	if len(all) != c.Len() {
		t.Errorf("oversized sample len = %d", len(all))
	}
}

func TestSamplePositiveIDs(t *testing.T) {
	c := buildTestCorpus()
	rng := rand.New(rand.NewSource(2))
	ids := c.SamplePositiveIDs(2, rng)
	if len(ids) != 2 {
		t.Fatalf("len = %d", len(ids))
	}
	for _, id := range ids {
		if c.Sentence(id).Gold != Positive {
			t.Errorf("sampled non-positive id %d", id)
		}
	}
}

func TestSampleBiasedIDs(t *testing.T) {
	c := buildTestCorpus()
	c.Preprocess(PreprocessOptions{})
	rng := rand.New(rand.NewSource(3))
	ids := c.SampleBiasedIDs(100, "shuttle", rng)
	for _, id := range ids {
		for _, tok := range c.Sentence(id).Tokens {
			if tok == "shuttle" {
				t.Errorf("biased sample contains withheld token (id %d)", id)
			}
		}
	}
	if len(ids) != c.Len()-1 {
		t.Errorf("biased sample size = %d, want %d", len(ids), c.Len()-1)
	}
}

func TestGoldOf(t *testing.T) {
	c := buildTestCorpus()
	labels := c.GoldOf([]int{0, 2})
	if labels[0] != Positive || labels[1] != Negative {
		t.Errorf("GoldOf = %v", labels)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	c := buildTestCorpus()
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if got.Name != c.Name || got.Task != c.Task || got.Len() != c.Len() {
		t.Fatalf("metadata mismatch: %v vs %v", got, c)
	}
	for i := range c.Sentences {
		if got.Sentences[i].Text != c.Sentences[i].Text || got.Sentences[i].Gold != c.Sentences[i].Gold {
			t.Errorf("sentence %d mismatch", i)
		}
	}
}

func TestJSONLFileRoundTrip(t *testing.T) {
	c := buildTestCorpus()
	path := t.TempDir() + "/corpus.jsonl"
	if err := c.SaveJSONL(path); err != nil {
		t.Fatalf("SaveJSONL: %v", err)
	}
	got, err := LoadJSONL(path)
	if err != nil {
		t.Fatalf("LoadJSONL: %v", err)
	}
	if got.Len() != c.Len() {
		t.Errorf("round trip length %d vs %d", got.Len(), c.Len())
	}
}

func TestWriteLabeledJSONL(t *testing.T) {
	c := buildTestCorpus()
	positives := map[int]bool{0: true, 3: true}
	var buf bytes.Buffer
	if err := c.WriteLabeledJSONL(&buf, positives); err != nil {
		t.Fatalf("WriteLabeledJSONL: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != c.Len() {
		t.Fatalf("got %d lines, want %d", len(lines), c.Len())
	}
	for i, line := range lines {
		var rec struct {
			ID    int    `json:"id"`
			Text  string `json:"text"`
			Label int    `json:"label"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.ID != i || rec.Text != c.Sentences[i].Text {
			t.Errorf("line %d: got %+v", i, rec)
		}
		want := 0
		if positives[i] {
			want = 1
		}
		if rec.Label != want {
			t.Errorf("line %d: label = %d, want %d", i, rec.Label, want)
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadJSONL(bytes.NewReader([]byte("not json\n"))); err == nil {
		t.Error("bad header should error")
	}
	if _, err := ReadJSONL(bytes.NewReader([]byte("{\"corpus\":\"x\",\"task\":\"y\"}\ngarbage\n"))); err == nil {
		t.Error("bad record should error")
	}
	if _, err := LoadJSONL("/nonexistent/path/file.jsonl"); err == nil {
		t.Error("missing file should error")
	}
}

// Property: positive rate is always within [0,1] and consistent with counts.
func TestPositiveRateProperty(t *testing.T) {
	f := func(labels []bool) bool {
		c := New("p", "t")
		for _, l := range labels {
			if l {
				c.Add("pos sentence", Positive)
			} else {
				c.Add("neg sentence", Negative)
			}
		}
		r := c.PositiveRate()
		if r < 0 || r > 1 {
			return false
		}
		return c.NumPositives() == len(c.Positives())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyCorpus(t *testing.T) {
	c := New("empty", "none")
	if c.PositiveRate() != 0 {
		t.Error("empty corpus positive rate != 0")
	}
	st := c.ComputeStats()
	if st.Sentences != 0 || st.AvgTokens != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	c.Preprocess(PreprocessOptions{Parse: true}) // must not panic
}
