// Relation extraction: label sentences that express a cause-effect relation
// using the TreeMatch grammar, whose rules range over the dependency parse
// tree (child '/', descendant '//' and conjunction '∧' operators) — the kind
// of heuristic that phrase-mining systems such as Snuba cannot express.
//
//	go run ./examples/relation_extraction
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/grammar"
	"repro/internal/oracle"
	"repro/internal/treematch"
)

func main() {
	c, err := datagen.ByName("cause-effect", 0.3, 5)
	if err != nil {
		log.Fatal(err)
	}
	// TreeMatch rules need dependency parse trees.
	c.Preprocess(corpus.PreprocessOptions{Parse: true})
	fmt.Println("corpus:", c)

	// Show what a TreeMatch rule looks like and what it matches.
	tm := treematch.New()
	rule, err := tm.Parse("caused/by")
	if err != nil {
		log.Fatal(err)
	}
	matched := grammar.Coverage(rule, c)
	fmt.Printf("\nseed rule %s matches %d sentences, e.g.:\n", rule, len(matched))
	for i, id := range matched {
		if i >= 3 {
			break
		}
		fmt.Printf("  - %s\n", c.Sentence(id).Text)
	}

	// Run Darwin with both grammars; the seed is the TreeMatch rule above.
	cfg := core.DefaultConfig()
	cfg.Budget = 80
	cfg.NumCandidates = 2000
	engine, err := core.New(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := engine.Run(core.RunOptions{
		SeedRules: []string{"treematch:caused/by"},
		Oracle:    oracle.NewGroundTruth(c),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\naccepted rules (%d) after %d questions:\n", len(report.Accepted), report.Questions)
	for _, rec := range report.Accepted {
		fmt.Printf("  %-40s coverage=%d\n", rec.Rule, rec.Coverage)
	}
	fmt.Printf("\ncoverage of cause-effect sentences: %.2f\n", eval.CoverageOfSet(c, report.Positives))
	fmt.Printf("precision of discovered set:        %.2f\n", eval.PrecisionOfSet(c, report.Positives))
	f1, _ := eval.BestF1(c, engine.Scores())
	fmt.Printf("classifier best F1:                 %.2f\n", f1)

	// Print one parse tree so the reader can see what TreeMatch operates on.
	if len(matched) > 0 {
		s := c.Sentence(matched[0])
		fmt.Printf("\ndependency tree of %q:\n  %s\n", s.Text, s.Tree)
	}
}
