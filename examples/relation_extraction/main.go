// Relation extraction: label sentences that express a cause-effect relation
// using the TreeMatch grammar, whose rules range over the dependency parse
// tree (child '/', descendant '//' and conjunction '∧' operators) — the kind
// of heuristic that phrase-mining systems such as Snuba cannot express.
//
// The discovery loop runs through the public SDK's in-process labeler
// (darwin.NewSession): the same darwin.Labeler loop as the HTTP examples,
// with no server in between — the engine is dialed directly.
//
//	go run ./examples/relation_extraction
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/grammar"
	"repro/internal/oracle"
	"repro/internal/treematch"
	"repro/pkg/darwin"
)

func main() {
	ctx := context.Background()
	c, err := datagen.ByName("cause-effect", 0.3, 5)
	if err != nil {
		log.Fatal(err)
	}
	// TreeMatch rules need dependency parse trees.
	c.Preprocess(corpus.PreprocessOptions{Parse: true})
	fmt.Println("corpus:", c)

	// Show what a TreeMatch rule looks like and what it matches.
	tm := treematch.New()
	rule, err := tm.Parse("caused/by")
	if err != nil {
		log.Fatal(err)
	}
	matched := grammar.Coverage(rule, c)
	fmt.Printf("\nseed rule %s matches %d sentences, e.g.:\n", rule, len(matched))
	for i, id := range matched {
		if i >= 3 {
			break
		}
		fmt.Printf("  - %s\n", c.Sentence(id).Text)
	}

	// Run Darwin with both grammars; the seed is the TreeMatch rule above.
	cfg := core.DefaultConfig()
	cfg.Budget = 80
	cfg.NumCandidates = 2000
	engine, err := core.New(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	lab, err := darwin.NewSession(engine, "cause-effect", darwin.Options{
		SeedRules: []string{"treematch:caused/by"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close(ctx)

	// The ground-truth oracle plays the annotator, judging the sample
	// sentences shown with each suggestion.
	annotator := oracle.NewGroundTruth(c)
	questions := 0
	for {
		sug, err := lab.Suggest(ctx)
		if errors.Is(err, darwin.ErrBudgetExhausted) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		ids := make([]int, 0, len(sug.Samples))
		for _, s := range sug.Samples {
			ids = append(ids, s.ID)
		}
		accept := annotator.Answer(oracle.Query{Coverage: ids, Samples: ids})
		if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: accept}); err != nil {
			log.Fatal(err)
		}
		questions++
	}
	rep, err := lab.Report(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\naccepted rules (%d) after %d questions:\n", len(rep.Accepted), rep.Questions)
	for _, rec := range rep.Accepted {
		fmt.Printf("  %-40s coverage=%d\n", rec.Rule, rec.Coverage)
	}
	positives := make(map[int]bool, len(rep.PositiveIDs))
	for _, id := range rep.PositiveIDs {
		positives[id] = true
	}
	fmt.Printf("\ncoverage of cause-effect sentences: %.2f\n", eval.CoverageOfSet(c, positives))
	fmt.Printf("precision of discovered set:        %.2f\n", eval.PrecisionOfSet(c, positives))

	// Print one parse tree so the reader can see what TreeMatch operates on.
	if len(matched) > 0 {
		s := c.Sentence(matched[0])
		fmt.Printf("\ndependency tree of %q:\n  %s\n", s.Text, s.Tree)
	}
}
