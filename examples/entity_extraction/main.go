// Entity extraction: find sentences that mention musicians, starting from a
// couple of labeled example sentences instead of a seed rule, and compare the
// three traversal strategies (LocalSearch, UniversalSearch, HybridSearch) —
// the §4.3 experiment in miniature.
//
//	go run ./examples/entity_extraction
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/oracle"
)

func main() {
	c, err := datagen.ByName("musicians", 0.15, 11)
	if err != nil {
		log.Fatal(err)
	}
	c.Preprocess(corpus.PreprocessOptions{})
	fmt.Println("corpus:", c)

	// Seed with two positive example sentences ("a couple of labeled
	// instances" — the alternative initialization of Algorithm 1).
	positives := c.Positives()
	seedIDs := positives[:2]
	fmt.Println("seed sentences:")
	for _, id := range seedIDs {
		fmt.Printf("  - %s\n", c.Sentence(id).Text)
	}

	for _, traversal := range []string{"local", "universal", "hybrid"} {
		cfg := core.DefaultConfig()
		cfg.Traversal = traversal
		cfg.Budget = 60
		cfg.NumCandidates = 1500
		engine, err := core.New(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		report, err := engine.Run(core.RunOptions{
			SeedPositiveIDs: seedIDs,
			Oracle:          oracle.NewGroundTruth(c),
		})
		if err != nil {
			log.Fatal(err)
		}
		cov := eval.CoverageOfSet(c, report.Positives)
		prec := eval.PrecisionOfSet(c, report.Positives)
		fmt.Printf("\nDarwin(%s): %d questions, %d rules, coverage=%.2f precision=%.2f\n",
			traversal, report.Questions, len(report.Accepted), cov, prec)
		for i, rec := range report.Accepted {
			if i >= 8 {
				fmt.Printf("  ... and %d more rules\n", len(report.Accepted)-8)
				break
			}
			fmt.Printf("  %-36s coverage=%d\n", rec.Rule, rec.Coverage)
		}
	}
}
