// Entity extraction: find sentences that mention musicians, starting from a
// couple of labeled example sentences instead of a seed rule, and compare
// the three traversal strategies (LocalSearch, UniversalSearch,
// HybridSearch) — the §4.3 experiment in miniature, driven through the
// public SDK's in-process labeler (darwin.NewSession).
//
//	go run ./examples/entity_extraction
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/oracle"
	"repro/pkg/darwin"
)

func main() {
	ctx := context.Background()
	c, err := datagen.ByName("musicians", 0.15, 11)
	if err != nil {
		log.Fatal(err)
	}
	c.Preprocess(corpus.PreprocessOptions{})
	fmt.Println("corpus:", c)

	// Seed with two positive example sentences ("a couple of labeled
	// instances" — the alternative initialization of Algorithm 1).
	positives := c.Positives()
	seedIDs := positives[:2]
	fmt.Println("seed sentences:")
	for _, id := range seedIDs {
		fmt.Printf("  - %s\n", c.Sentence(id).Text)
	}

	annotator := oracle.NewGroundTruth(c)
	for _, traversal := range []string{"local", "universal", "hybrid"} {
		cfg := core.DefaultConfig()
		cfg.Traversal = traversal
		cfg.Budget = 60
		cfg.NumCandidates = 1500
		engine, err := core.New(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		lab, err := darwin.NewSession(engine, "musicians", darwin.Options{
			SeedPositiveIDs: seedIDs,
		})
		if err != nil {
			log.Fatal(err)
		}
		for {
			sug, err := lab.Suggest(ctx)
			if errors.Is(err, darwin.ErrBudgetExhausted) {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			ids := make([]int, 0, len(sug.Samples))
			for _, s := range sug.Samples {
				ids = append(ids, s.ID)
			}
			accept := annotator.Answer(oracle.Query{Coverage: ids, Samples: ids})
			if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: accept}); err != nil {
				log.Fatal(err)
			}
		}
		rep, err := lab.Report(ctx)
		if err != nil {
			log.Fatal(err)
		}
		found := make(map[int]bool, len(rep.PositiveIDs))
		for _, id := range rep.PositiveIDs {
			found[id] = true
		}
		cov := eval.CoverageOfSet(c, found)
		prec := eval.PrecisionOfSet(c, found)
		fmt.Printf("\nDarwin(%s): %d questions, %d rules, coverage=%.2f precision=%.2f\n",
			traversal, rep.Questions, len(rep.Accepted), cov, prec)
		for i, rec := range rep.Accepted {
			if i >= 8 {
				fmt.Printf("  ... and %d more rules\n", len(rep.Accepted)-8)
				break
			}
			fmt.Printf("  %-36s coverage=%d\n", rec.Rule, rec.Coverage)
		}
		_ = lab.Close(ctx)
	}
}
