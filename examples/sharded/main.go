// Sharded deployment: one logical labeler namespace over a fleet of shards.
//
// This example embeds what a production topology runs as separate
// processes: two darwind-equivalent shard servers and a darwin-router in
// front of them, all in-process over httptest. The client side is the
// point — it is byte-for-byte the quickstart loop against a single daemon,
// because the router serves the identical /v2 surface through the same
// handler set. Fresh labelers are placed by consistent-hashing their
// dataset onto the shard ring; every id the router returns is namespaced
// "<shard>~<id>" and routes by prefix, so the router holds no state.
//
//	go run ./examples/sharded
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/pkg/darwin"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole pipeline; the test drives it as an end-to-end check.
func run(out io.Writer) error {
	ctx := context.Background()

	// 1. Two shards, each serving both datasets (every shard must serve the
	//    datasets that hash to it; serving all datasets everywhere keeps
	//    re-homing trivial when the fleet grows). In production these are
	//    two darwind processes with their own journals.
	newShard := func() (*httptest.Server, error) {
		var sets []*server.Dataset
		for _, name := range []string{"directions", "musicians"} {
			c, err := datagen.ByName(name, 0.1, 42)
			if err != nil {
				return nil, err
			}
			cfg := core.DefaultConfig()
			cfg.Budget = 30
			cfg.NumCandidates = 1000
			cfg.Seed = 42
			cfg.Classifier = classifier.Config{Epochs: 10, LearningRate: 0.3, L2: 1e-4, Seed: 42}
			cfg.Embedding = embedding.Config{Dim: 32, Window: 4, MinCount: 2, Seed: 42}
			engine, err := core.New(c, cfg)
			if err != nil {
				return nil, err
			}
			sets = append(sets, &server.Dataset{Name: name, Engine: engine})
		}
		srv, err := server.New(server.Config{}, sets...)
		if err != nil {
			return nil, err
		}
		return httptest.NewServer(srv), nil
	}
	shardA, err := newShard()
	if err != nil {
		return err
	}
	defer shardA.Close()
	shardB, err := newShard()
	if err != nil {
		return err
	}
	defer shardB.Close()

	// 2. The router: the same /v2 handler set darwind mounts, over a
	//    consistent-hash ring of the two shards. In production this is
	//    darwin-router -shards alpha=...,beta=...
	router, err := shard.New([]shard.Spec{
		{Name: "alpha", URL: shardA.URL},
		{Name: "beta", URL: shardB.URL},
	}, shard.Config{})
	if err != nil {
		return err
	}
	front := httptest.NewServer(server.V2Handler(router))
	defer front.Close()
	for _, ds := range []string{"directions", "musicians"} {
		fmt.Fprintf(out, "dataset %-10s -> shard %s\n", ds, router.Place(ds))
	}

	// 3. The client sees one server. Drive one labeler per dataset; they
	//    land on different shards, invisibly.
	client := darwin.NewClient(front.URL, "")
	for _, ds := range []struct{ name, seed string }{
		{"directions", "best way to get to"},
		{"musicians", "composer"},
	} {
		lab, err := client.NewLabeler(ctx, darwin.CreateOptions{
			Dataset:   ds.name,
			SeedRules: []string{ds.seed},
			Budget:    8,
			Seed:      42,
		})
		if err != nil {
			return err
		}
		accepted := 0
		for {
			sug, err := lab.Suggest(ctx)
			if errors.Is(err, darwin.ErrBudgetExhausted) {
				break
			}
			if err != nil {
				return err
			}
			// Auto-judge: accept high-precision rules (small new coverage
			// relative to benefit) — a stand-in for the human verdict.
			accept := sug.NewCoverage > 0 && sug.Benefit/float64(sug.NewCoverage) >= 0.5
			if accept {
				accepted++
			}
			if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: accept}); err != nil {
				return err
			}
		}
		rep, err := lab.Report(ctx)
		if err != nil {
			return err
		}
		st, err := lab.Status(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-10s labeler %s: %d questions, %d rules accepted, %d positives\n",
			ds.name, st.ID, rep.Questions, accepted, rep.Positives)
		if err := lab.Close(ctx); err != nil {
			return err
		}
	}
	return nil
}
