package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestShardedEndToEnd runs the whole example — two embedded shards, an
// embedded router serving the unmodified /v2 handler set, and an SDK client
// driving labelers on both — as an end-to-end sharding test.
func TestShardedEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("sharded example failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"directions", "musicians", "labeler"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The two datasets must land on different shards with these shard
	// names, and the printed labeler ids must be router-namespaced.
	if !strings.Contains(out, "-> shard alpha") || !strings.Contains(out, "-> shard beta") {
		t.Errorf("datasets did not spread across both shards:\n%s", out)
	}
	if !strings.Contains(out, "labeler alpha~") && !strings.Contains(out, "labeler beta~") {
		t.Errorf("labeler ids are not router-namespaced:\n%s", out)
	}
}
