package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestIntentLabelingEndToEnd runs the whole §4.5 pipeline — SDK-driven
// discovery over HTTP, label model, noise-aware classifier — as an
// end-to-end SDK test (the report's coverage_ids feed the label matrix).
func TestIntentLabelingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over the tweets corpus")
	}
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("intent labeling failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "rules accepted") {
		t.Errorf("discovery phase output missing:\n%s", out)
	}
	if !strings.Contains(out, "label model produced") {
		t.Errorf("label model phase output missing:\n%s", out)
	}
	if !strings.Contains(out, "noise-aware classifier F1") {
		t.Errorf("classifier phase output missing:\n%s", out)
	}
}
