// Intent labeling: discover rules for the Food intent on the tweets dataset
// through the public SDK (pkg/darwin) against an embedded /v2 server, with a
// simulated crowd of annotators judging the sample tweets of each
// suggestion. The accepted rules' coverage sets — carried by the /v2 report
// as coverage_ids — then feed the Snorkel-style generative label model, and
// a noise-aware classifier trains on the de-noised labels (the §4.5 /
// Table 2 pipeline).
//
//	go run ./examples/intent_labeling
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/labelmodel"
	"repro/internal/oracle"
	"repro/internal/server"
	"repro/pkg/darwin"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole pipeline; the test drives it as an end-to-end SDK check.
func run(out io.Writer) error {
	ctx := context.Background()

	// The tweets corpus: ~2.1K tweets, 11.4% with Food intent (Table 1).
	c, err := datagen.ByName("tweets", 1.0, 7)
	if err != nil {
		return err
	}
	c.Preprocess(corpus.PreprocessOptions{})
	fmt.Fprintln(out, "corpus:", c)

	cfg := core.DefaultConfig()
	cfg.Budget = 60
	cfg.NumCandidates = 1500
	cfg.Seed = 7
	engine, err := core.New(c, cfg)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{}, &server.Dataset{Name: "tweets", Engine: engine})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	lab, err := darwin.NewClient(ts.URL, "").NewLabeler(ctx, darwin.CreateOptions{
		Dataset:   "tweets",
		SeedRules: []string{"craving"},
		Budget:    60,
		Seed:      7,
	})
	if err != nil {
		return err
	}
	defer lab.Close(ctx)

	// A crowd oracle: three annotators per rule, each seeing the sample
	// tweets of Figure 2 and occasionally making a mistake.
	crowd := oracle.NewRecording(oracle.NewCrowd(c, 0.05, 99))
	for {
		sug, err := lab.Suggest(ctx)
		if errors.Is(err, darwin.ErrBudgetExhausted) {
			break
		}
		if err != nil {
			return err
		}
		ids := make([]int, 0, len(sug.Samples))
		for _, s := range sug.Samples {
			ids = append(ids, s.ID)
		}
		accept := crowd.Answer(oracle.Query{Coverage: ids, Samples: ids})
		if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: accept}); err != nil {
			return err
		}
	}
	rep, err := lab.Report(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "crowd answered %d questions, %d rules accepted\n", crowd.Count(), len(rep.Accepted))
	positives := make(map[int]bool, len(rep.PositiveIDs))
	for _, id := range rep.PositiveIDs {
		positives[id] = true
	}
	fmt.Fprintf(out, "coverage of Food-intent tweets: %.2f\n", eval.CoverageOfSet(c, positives))

	// Build the label matrix: every accepted rule votes positive on its
	// coverage (the report's coverage_ids); uncovered tweets act as weak
	// negative evidence.
	matrix := labelmodel.NewMatrix(c.Len())
	for _, rec := range rep.Accepted {
		matrix.AddRule(rec.Rule, rec.CoverageIDs, labelmodel.VotePositive)
	}
	var uncovered []int
	for id := 0; id < c.Len(); id++ {
		if !positives[id] {
			uncovered = append(uncovered, id)
		}
	}
	matrix.AddRule("uncovered", uncovered, labelmodel.VoteNegative)

	gen := labelmodel.FitGenerative(matrix, labelmodel.DefaultGenerativeConfig())
	probs := gen.Probabilities()
	ids, labels := labelmodel.TrainingSet(probs, 0.55, 0.45)
	fmt.Fprintf(out, "label model produced %d training examples from %d rules\n", len(ids), matrix.NumRules()-1)

	// Train the noise-aware classifier on the de-noised labels.
	emb := embedding.Train(c.TokenizedSentences(), embedding.DefaultConfig())
	feat := classifier.NewFeaturizer(emb, 512)
	X := make([][]float64, len(ids))
	y := make([]int, len(ids))
	for i, id := range ids {
		X[i] = feat.Features(c.Sentence(id).Tokens)
		y[i] = labels[i]
	}
	model := classifier.NewMLP(classifier.DefaultConfig())
	if err := model.Fit(X, y); err != nil {
		return err
	}
	scores := make([]float64, c.Len())
	for id := 0; id < c.Len(); id++ {
		scores[id] = model.Proba(feat.Features(c.Sentence(id).Tokens))
	}
	f1, thr := eval.BestF1(c, scores)
	fmt.Fprintf(out, "noise-aware classifier F1 = %.2f (threshold %.1f)\n", f1, thr)

	// Show a few tweets the classifier is most confident about.
	fmt.Fprintln(out, "\nhighest-scoring tweets:")
	for _, id := range topK(scores, 5) {
		fmt.Fprintf(out, "  %.2f  %s\n", scores[id], c.Sentence(id).Text)
	}
	return nil
}

func topK(scores []float64, k int) []int {
	ids := make([]int, len(scores))
	for i := range ids {
		ids[i] = i
	}
	for i := 0; i < k && i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if scores[ids[j]] > scores[ids[i]] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}
