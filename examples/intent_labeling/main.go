// Intent labeling: discover rules for the Food intent on the tweets dataset
// with a simulated crowd of annotators, then de-noise the resulting labels
// with the Snorkel-style generative label model and train a noise-aware
// classifier (the §4.5 / Table 2 pipeline).
//
//	go run ./examples/intent_labeling
package main

import (
	"fmt"
	"log"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/labelmodel"
	"repro/internal/oracle"
)

func main() {
	// The tweets corpus: ~2.1K tweets, 11.4% with Food intent (Table 1).
	c, err := datagen.ByName("tweets", 1.0, 7)
	if err != nil {
		log.Fatal(err)
	}
	c.Preprocess(corpus.PreprocessOptions{})
	fmt.Println("corpus:", c)

	cfg := core.DefaultConfig()
	cfg.Budget = 60
	cfg.NumCandidates = 1500
	engine, err := core.New(c, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A crowd oracle: three annotators per rule, each seeing the 5 sample
	// tweets of Figure 2 and occasionally making a mistake.
	crowd := oracle.NewRecording(oracle.NewCrowd(c, 0.05, 99))

	report, err := engine.Run(core.RunOptions{
		SeedRules: []string{"craving"},
		Oracle:    crowd,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crowd answered %d questions, %d rules accepted\n", crowd.Count(), len(report.Accepted))
	fmt.Printf("coverage of Food-intent tweets: %.2f\n", eval.CoverageOfSet(c, report.Positives))

	// Build the label matrix: every accepted rule votes positive on its
	// coverage; uncovered tweets act as weak negative evidence.
	matrix := labelmodel.NewMatrix(c.Len())
	for _, rec := range report.Accepted {
		matrix.AddRule(rec.Rule, rec.CoverageIDs, labelmodel.VotePositive)
	}
	var uncovered []int
	for id := 0; id < c.Len(); id++ {
		if !report.Positives[id] {
			uncovered = append(uncovered, id)
		}
	}
	matrix.AddRule("uncovered", uncovered, labelmodel.VoteNegative)

	gen := labelmodel.FitGenerative(matrix, labelmodel.DefaultGenerativeConfig())
	probs := gen.Probabilities()
	ids, labels := labelmodel.TrainingSet(probs, 0.55, 0.45)
	fmt.Printf("label model produced %d training examples from %d rules\n", len(ids), matrix.NumRules()-1)

	// Train the noise-aware classifier on the de-noised labels.
	emb := embedding.Train(c.TokenizedSentences(), embedding.DefaultConfig())
	feat := classifier.NewFeaturizer(emb, 512)
	X := make([][]float64, len(ids))
	y := make([]int, len(ids))
	for i, id := range ids {
		X[i] = feat.Features(c.Sentence(id).Tokens)
		y[i] = labels[i]
	}
	model := classifier.NewMLP(classifier.DefaultConfig())
	if err := model.Fit(X, y); err != nil {
		log.Fatal(err)
	}
	scores := make([]float64, c.Len())
	for id := 0; id < c.Len(); id++ {
		scores[id] = model.Proba(feat.Features(c.Sentence(id).Tokens))
	}
	f1, thr := eval.BestF1(c, scores)
	fmt.Printf("noise-aware classifier F1 = %.2f (threshold %.1f)\n", f1, thr)

	// Show a few tweets the classifier is most confident about.
	fmt.Println("\nhighest-scoring tweets:")
	top := topK(scores, 5)
	for _, id := range top {
		fmt.Printf("  %.2f  %s\n", scores[id], c.Sentence(id).Text)
	}
}

func topK(scores []float64, k int) []int {
	ids := make([]int, len(scores))
	for i := range ids {
		ids[i] = i
	}
	for i := 0; i < k && i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if scores[ids[j]] > scores[ids[i]] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}
