package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartEndToEnd runs the whole example — engine, embedded /v2
// server, SDK client, simulated annotator — as an end-to-end SDK test.
func TestQuickstartEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("quickstart failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "ACCEPTED") {
		t.Errorf("no rule was accepted:\n%s", out)
	}
	if !strings.Contains(out, "discovered") || strings.Contains(out, "discovered 0 positive") {
		t.Errorf("no positives discovered:\n%s", out)
	}
}
