// Quickstart: run Darwin end to end on the directions dataset.
//
// This example shows the minimal pipeline: generate (or load) a corpus, build
// the engine, seed it with one labeling rule, and let the simulated oracle
// verify the candidate rules Darwin proposes. It prints the accepted rules
// and the recall of the discovered positive set.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/oracle"
)

func main() {
	// 1. A corpus of hotel-guest questions; positives ask for directions or
	//    transportation (Example 1 of the paper). In a real deployment this
	//    would be loaded with corpus.LoadJSONL.
	c, err := datagen.ByName("directions", 0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	c.Preprocess(corpus.PreprocessOptions{Parse: false})
	fmt.Println("corpus:", c)

	// 2. Build the engine. DefaultConfig registers the TokensRegex and
	//    TreeMatch grammars; here a small candidate pool keeps the run fast.
	cfg := core.DefaultConfig()
	cfg.Budget = 60
	cfg.NumCandidates = 1500
	cfg.Classifier.LearningRate = 0.3
	engine, err := core.New(c, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The oracle stands in for the human annotator of Figure 2: it
	//    answers YES when at least 80% of a rule's coverage is positive.
	annotator := oracle.NewGroundTruth(c)

	// 4. Run the adaptive discovery loop from a single seed rule.
	report, err := engine.Run(core.RunOptions{
		SeedRules: []string{"best way to get to"},
		Oracle:    annotator,
		OnQuery: func(rec core.RuleRecord, _ *core.Engine) {
			verdict := "rejected"
			if rec.Accepted {
				verdict = "ACCEPTED"
			}
			fmt.Printf("  question %2d: %-40s (%d sentences) -> %s\n",
				rec.Question, rec.Rule, rec.Coverage, verdict)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Inspect the result: accepted rules, discovered positives, recall.
	fmt.Printf("\naccepted %d rules with %d questions:\n", len(report.Accepted), report.Questions)
	for _, rec := range report.Accepted {
		fmt.Printf("  %s\n", rec.Rule)
	}
	fmt.Printf("\ndiscovered %d positive sentences\n", len(report.Positives))
	fmt.Printf("coverage (recall of gold positives): %.2f\n", eval.CoverageOfSet(c, report.Positives))
	fmt.Printf("precision of discovered set:         %.2f\n", eval.PrecisionOfSet(c, report.Positives))
	f1, _ := eval.BestF1(c, engine.Scores())
	fmt.Printf("trained classifier best F1:          %.2f\n", f1)
}
