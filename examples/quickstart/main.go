// Quickstart: run Darwin end to end through the public SDK (pkg/darwin).
//
// This example shows the canonical deployment shape: an engine built once,
// served over the versioned /v2 HTTP API, and driven by a client that only
// speaks the darwin.Labeler interface — suggest a rule, judge the sample
// sentences, answer, repeat. A simulated annotator (the ground-truth oracle
// of §4.1) plays the human: it accepts a rule when at least 80% of the
// sample sentences shown with it are true positives, exactly the judgement
// call of Figure 2. Swap darwin.NewClient for darwin.NewSession and the loop
// runs in-process against the same engine, unchanged.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/oracle"
	"repro/internal/server"
	"repro/pkg/darwin"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole pipeline; the test drives it as an end-to-end SDK check.
func run(out io.Writer) error {
	ctx := context.Background()

	// 1. A corpus of hotel-guest questions; positives ask for directions or
	//    transportation (Example 1 of the paper). In a real deployment this
	//    would be loaded with corpus.LoadJSONL.
	c, err := datagen.ByName("directions", 0.1, 42)
	if err != nil {
		return err
	}
	c.Preprocess(corpus.PreprocessOptions{Parse: false})
	fmt.Fprintln(out, "corpus:", c)

	// 2. Build the engine once and serve it over HTTP — the same darwind
	//    stack, embedded. Every labeler created against the server shares
	//    this engine's index and preprocessing.
	cfg := core.DefaultConfig()
	cfg.Budget = 60
	cfg.NumCandidates = 1500
	cfg.Seed = 42
	cfg.Classifier = classifier.Config{Epochs: 10, LearningRate: 0.3, L2: 1e-4, Seed: 42}
	cfg.Embedding = embedding.Config{Dim: 32, Window: 4, MinCount: 2, Seed: 42}
	engine, err := core.New(c, cfg)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{}, &server.Dataset{Name: "directions", Engine: engine})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// 3. Open a labeler through the SDK: one seed rule, default budget.
	client := darwin.NewClient(ts.URL, "")
	lab, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset:   "directions",
		SeedRules: []string{"best way to get to"},
		Budget:    60,
		Seed:      42,
	})
	if err != nil {
		return err
	}
	defer lab.Close(ctx)

	// 4. The interactive loop of Algorithm 1, with the ground-truth oracle
	//    standing in for the human: it judges the sample sentences shown
	//    alongside each suggestion.
	annotator := oracle.NewGroundTruth(c)
	for {
		sug, err := lab.Suggest(ctx)
		if errors.Is(err, darwin.ErrBudgetExhausted) {
			break
		}
		if err != nil {
			return err
		}
		ids := make([]int, 0, len(sug.Samples))
		for _, s := range sug.Samples {
			ids = append(ids, s.ID)
		}
		accept := annotator.Answer(oracle.Query{Coverage: ids, Samples: ids})
		verdict := "rejected"
		if accept {
			verdict = "ACCEPTED"
		}
		fmt.Fprintf(out, "  question %2d: %-40s (%d sentences) -> %s\n",
			sug.Question, sug.Rule, sug.Coverage, verdict)
		if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: accept}); err != nil {
			return err
		}
	}

	// 5. Inspect the result: accepted rules, discovered positives, recall.
	rep, err := lab.Report(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\naccepted %d rules with %d questions:\n", len(rep.Accepted), rep.Questions)
	for _, rec := range rep.Accepted {
		fmt.Fprintf(out, "  %s\n", rec.Rule)
	}
	positives := make(map[int]bool, len(rep.PositiveIDs))
	for _, id := range rep.PositiveIDs {
		positives[id] = true
	}
	fmt.Fprintf(out, "\ndiscovered %d positive sentences\n", rep.Positives)
	fmt.Fprintf(out, "coverage (recall of gold positives): %.2f\n", eval.CoverageOfSet(c, positives))
	fmt.Fprintf(out, "precision of discovered set:         %.2f\n", eval.PrecisionOfSet(c, positives))
	return nil
}
