package darwin

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// The error taxonomy of the API. Every error a Labeler returns wraps exactly
// one of these sentinels, so callers branch with errors.Is regardless of
// transport; the /v2 HTTP surface maps them to and from the uniform JSON
// error envelope {code, message, retryable}.
var (
	// ErrInvalid marks a malformed or unusable request (bad seed rule, empty
	// seeds, unknown mode, ...).
	ErrInvalid = errors.New("darwin: invalid argument")
	// ErrUnauthorized marks a missing or wrong bearer token.
	ErrUnauthorized = errors.New("darwin: unauthorized")
	// ErrNotFound marks an unknown or expired labeler, workspace, annotator
	// or dataset.
	ErrNotFound = errors.New("darwin: not found")
	// ErrConflict marks a request that does not fit the labeler's current
	// state: an answer whose key does not match the pending suggestion, an
	// answer with nothing pending, a duplicate annotator attach.
	ErrConflict = errors.New("darwin: conflict")
	// ErrBudgetExhausted marks a finished labeler: the oracle budget is
	// spent, or no candidate rules remain.
	ErrBudgetExhausted = errors.New("darwin: budget exhausted")
	// ErrRateLimited marks a request rejected by the server's rate limiter;
	// it is retryable after a pause.
	ErrRateLimited = errors.New("darwin: rate limited")
	// ErrUnavailable marks a server that cannot take the request right now:
	// capacity limits, or a workspace whose journal failed. Retryable.
	ErrUnavailable = errors.New("darwin: unavailable")
	// ErrInternal marks an unexpected server-side failure.
	ErrInternal = errors.New("darwin: internal error")
)

// Wire codes of the /v2 error envelope, one per sentinel.
const (
	CodeInvalid         = "invalid_argument"
	CodeUnauthorized    = "unauthorized"
	CodeNotFound        = "not_found"
	CodeConflict        = "conflict"
	CodeBudgetExhausted = "budget_exhausted"
	CodeRateLimited     = "rate_limited"
	CodeUnavailable     = "unavailable"
	CodeInternal        = "internal"
)

// ErrorEnvelope is the uniform JSON error body of every /v2 endpoint.
type ErrorEnvelope struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description of this particular failure.
	Message string `json:"message"`
	// Retryable reports whether retrying the identical request later can
	// succeed (rate limits, capacity, journal recovery).
	Retryable bool `json:"retryable"`
}

// errorClass is the single source of truth tying a sentinel to its wire
// code, HTTP status and retryability. Order matters only in that every
// entry's sentinel must be distinct.
var errorClasses = []struct {
	err       error
	code      string
	status    int
	retryable bool
}{
	{ErrInvalid, CodeInvalid, http.StatusBadRequest, false},
	{ErrUnauthorized, CodeUnauthorized, http.StatusUnauthorized, false},
	{ErrNotFound, CodeNotFound, http.StatusNotFound, false},
	{ErrConflict, CodeConflict, http.StatusConflict, false},
	{ErrBudgetExhausted, CodeBudgetExhausted, http.StatusConflict, false},
	{ErrRateLimited, CodeRateLimited, http.StatusTooManyRequests, true},
	{ErrUnavailable, CodeUnavailable, http.StatusServiceUnavailable, true},
	{ErrInternal, CodeInternal, http.StatusInternalServerError, false},
}

// Code returns the wire code for err (CodeInternal when err wraps no
// sentinel of the taxonomy).
func Code(err error) string {
	for _, c := range errorClasses {
		if errors.Is(err, c.err) {
			return c.code
		}
	}
	return CodeInternal
}

// HTTPStatus returns the HTTP status the /v2 surface serves err with.
func HTTPStatus(err error) int {
	for _, c := range errorClasses {
		if errors.Is(err, c.err) {
			return c.status
		}
	}
	return http.StatusInternalServerError
}

// Retryable reports whether retrying the identical request later can
// succeed.
func Retryable(err error) bool {
	for _, c := range errorClasses {
		if errors.Is(err, c.err) {
			return c.retryable
		}
	}
	return false
}

// Envelope builds the /v2 wire envelope for err. The sentinel's own prefix
// is stripped from the message (the code already carries that information,
// and the receiving client re-attaches the sentinel via Err).
func Envelope(err error) ErrorEnvelope {
	for _, c := range errorClasses {
		if errors.Is(err, c.err) {
			msg := strings.TrimPrefix(err.Error(), c.err.Error()+": ")
			return ErrorEnvelope{Code: c.code, Message: msg, Retryable: c.retryable}
		}
	}
	return ErrorEnvelope{Code: CodeInternal, Message: err.Error()}
}

// Err reconstructs a typed error from a received envelope: the result wraps
// the sentinel matching the code (ErrInternal for unknown codes) and carries
// the server's message, so errors.Is behaves identically on both sides of
// the wire.
func (e ErrorEnvelope) Err() error {
	for _, c := range errorClasses {
		if c.code == e.Code {
			if e.Message != "" {
				return fmt.Errorf("%w: %s", c.err, e.Message)
			}
			return c.err
		}
	}
	if e.Message != "" {
		return fmt.Errorf("%w: %s (code %q)", ErrInternal, e.Message, e.Code)
	}
	return fmt.Errorf("%w (code %q)", ErrInternal, e.Code)
}

// wrap attaches sentinel to err (preserving err's chain and message) unless
// err already carries a sentinel of the taxonomy.
func wrap(sentinel, err error) error {
	if err == nil {
		return nil
	}
	for _, c := range errorClasses {
		if errors.Is(err, c.err) {
			return err
		}
	}
	return fmt.Errorf("%w: %w", sentinel, err)
}
