package darwin

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// Options configures a new solo session labeler.
type Options struct {
	// SeedRules seed the positive set without consuming budget.
	SeedRules []string
	// SeedPositiveIDs are sentence IDs known to be positive.
	SeedPositiveIDs []int
	// Budget overrides the engine's oracle query budget (0 keeps it).
	Budget int
	// Seed overrides the engine's random seed for this labeler (0 keeps it),
	// making the run replayable independently of other labelers.
	Seed int64
}

// SessionLabeler adapts a solo core.Session to the Labeler interface. It
// owns the serialization the session itself does not provide: all methods
// are safe for concurrent use, and AnswerBatch applies its whole batch in
// one critical section. Status reads a cached snapshot behind its own
// narrow lock, so status polls never block behind an in-flight suggest
// step.
type SessionLabeler struct {
	mu      sync.Mutex
	eng     *core.Engine
	sess    *core.Session
	dataset string
	closed  atomic.Bool

	// stMu guards st, the status snapshot refreshed after every completed
	// operation (Status must stay cheap while mu is held across a long
	// core step).
	stMu sync.Mutex
	st   Status
}

// NewSession starts a solo discovery session on the engine and wraps it as a
// Labeler. The dataset name is carried into reports and statuses.
func NewSession(eng *core.Engine, dataset string, opts Options) (*SessionLabeler, error) {
	sess, err := eng.NewSession(core.SessionOptions{
		SeedRules:       opts.SeedRules,
		SeedPositiveIDs: opts.SeedPositiveIDs,
		Budget:          opts.Budget,
		Seed:            opts.Seed,
	})
	if err != nil {
		return nil, wrap(ErrInvalid, err)
	}
	l := &SessionLabeler{eng: eng, sess: sess, dataset: dataset}
	l.refreshStatusLocked()
	return l, nil
}

// refreshStatusLocked recomputes the cached status snapshot. Callers hold
// l.mu (or are in the constructor).
func (l *SessionLabeler) refreshStatusLocked() {
	st := Status{
		Dataset:   l.dataset,
		Mode:      ModeSession,
		Budget:    l.sess.Budget(),
		Questions: l.sess.Questions(),
		Positives: l.sess.PositivesCount(),
		Done:      l.sess.Done(),
	}
	l.stMu.Lock()
	l.st = st
	l.stMu.Unlock()
}

// Suggest implements Labeler.
func (l *SessionLabeler) Suggest(ctx context.Context) (Suggestion, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.suggestLocked()
}

func (l *SessionLabeler) suggestLocked() (Suggestion, error) {
	if l.closed.Load() {
		return Suggestion{}, fmt.Errorf("%w: labeler is closed", ErrNotFound)
	}
	sug, ok := l.sess.Next()
	defer l.refreshStatusLocked()
	if !ok {
		if l.sess.Questions() >= l.sess.Budget() {
			return Suggestion{}, fmt.Errorf("%w: all %d questions answered", ErrBudgetExhausted, l.sess.Budget())
		}
		return Suggestion{}, fmt.Errorf("%w: no candidate rules remain", ErrBudgetExhausted)
	}
	out := Suggestion{
		Key:         sug.Key,
		Rule:        sug.Rule,
		Coverage:    sug.Coverage,
		NewCoverage: sug.NewCoverage,
		Benefit:     sug.Benefit,
		AvgBenefit:  sug.AvgBenefit,
		Question:    l.sess.Questions() + 1,
		BudgetLeft:  l.sess.Budget() - l.sess.Questions(),
		Samples:     samplesFrom(l.eng.Corpus(), sug.SampleIDs),
	}
	return out, nil
}

// Answer implements Labeler.
func (l *SessionLabeler) Answer(ctx context.Context, ans Answer) error {
	_, err := l.AnswerBatch(ctx, []Answer{ans})
	return err
}

// AnswerBatch implements BatchAnswerer: the whole batch is applied under one
// lock acquisition, so no other caller's suggest or answer interleaves. Each
// verdict answers the then-pending suggestion (requesting one when none is
// pending); a non-empty key must match it. On error the returned records
// cover the applied prefix.
func (l *SessionLabeler) AnswerBatch(ctx context.Context, answers []Answer) ([]RuleRecord, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.answerBatchLocked(answers)
}

// AnswerBatchStatus implements BatchStatusAnswerer: batch and status come
// out of the same critical section, so the status is exactly the labeler
// after this batch's applied prefix.
func (l *SessionLabeler) AnswerBatchStatus(ctx context.Context, answers []Answer) ([]RuleRecord, Status, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	recs, err := l.answerBatchLocked(answers)
	l.stMu.Lock()
	st := l.st
	l.stMu.Unlock()
	return recs, st, err
}

func (l *SessionLabeler) answerBatchLocked(answers []Answer) ([]RuleRecord, error) {
	if l.closed.Load() {
		return nil, fmt.Errorf("%w: labeler is closed", ErrNotFound)
	}
	defer l.refreshStatusLocked()
	var recs []RuleRecord
	for i, ans := range answers {
		key := ans.Key
		if key == "" {
			sug, err := l.suggestLocked()
			if err != nil {
				return recs, batchErr(i, len(answers), err)
			}
			key = sug.Key
		} else if i > 0 {
			// A keyed verdict mid-batch targets the next suggestion, which
			// the previous answer has not requested yet.
			if _, err := l.suggestLocked(); err != nil {
				return recs, batchErr(i, len(answers), err)
			}
		}
		rec, err := l.sess.Answer(key, ans.Accept)
		if err != nil {
			return recs, batchErr(i, len(answers), wrap(ErrConflict, err))
		}
		recs = append(recs, coreRecord(rec, ""))
	}
	return recs, nil
}

// batchErr annotates a mid-batch failure with how far the batch got;
// single-answer calls pass the error through untouched.
func batchErr(i, n int, err error) error {
	if n == 1 {
		return err
	}
	return fmt.Errorf("answer %d/%d (%d applied): %w", i+1, n, i, err)
}

// Report implements Labeler.
func (l *SessionLabeler) Report(ctx context.Context) (Report, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed.Load() {
		return Report{}, fmt.Errorf("%w: labeler is closed", ErrNotFound)
	}
	rep := l.sess.Report()
	out := Report{
		Dataset:     l.dataset,
		Mode:        ModeSession,
		Budget:      l.sess.Budget(),
		Questions:   rep.Questions,
		Done:        l.sess.Done(),
		Positives:   len(rep.Positives),
		PositiveIDs: rep.PositiveIDs(),
		Accepted:    make([]RuleRecord, 0, len(rep.Accepted)),
		History:     make([]RuleRecord, 0, len(rep.History)),
	}
	for _, rec := range rep.Accepted {
		out.Accepted = append(out.Accepted, coreRecord(rec, ""))
	}
	for _, rec := range rep.History {
		out.History = append(out.History, coreRecord(rec, ""))
	}
	return out, nil
}

// Export implements Labeler.
func (l *SessionLabeler) Export(ctx context.Context, w io.Writer) error {
	l.mu.Lock()
	if l.closed.Load() {
		l.mu.Unlock()
		return fmt.Errorf("%w: labeler is closed", ErrNotFound)
	}
	positives := l.sess.Positives()
	l.mu.Unlock()
	return l.eng.Corpus().WriteLabeledJSONL(w, positives)
}

// Close implements Labeler. Further calls fail with ErrNotFound.
func (l *SessionLabeler) Close(ctx context.Context) error {
	l.closed.Store(true)
	return nil
}

// Status implements Statuser. It reads the cached snapshot of the last
// completed operation, so it never blocks behind an in-flight suggest step.
func (l *SessionLabeler) Status(ctx context.Context) (Status, error) {
	if l.closed.Load() {
		return Status{}, fmt.Errorf("%w: labeler is closed", ErrNotFound)
	}
	l.stMu.Lock()
	defer l.stMu.Unlock()
	return l.st, nil
}

// StepLatency returns the last and average wall-clock duration of the
// suggest steps that did real work (serving-layer diagnostics; not part of
// the Labeler interface).
func (l *SessionLabeler) StepLatency() (last, avg time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sess.StepLatency()
}

// samplesFrom resolves sample sentence IDs against the corpus, skipping IDs
// the corpus does not know.
func samplesFrom(corp *corpus.Corpus, ids []int) []Sample {
	var out []Sample
	for _, id := range ids {
		if sent := corp.Sentence(id); sent != nil {
			out = append(out, Sample{ID: id, Text: sent.Text})
		}
	}
	return out
}

// coreRecord converts a core.RuleRecord to the SDK shape. CoverageIDs are
// sorted so reports serialize deterministically.
func coreRecord(rec core.RuleRecord, annotator string) RuleRecord {
	out := RuleRecord{
		Question:       rec.Question,
		Key:            rec.Key,
		Rule:           rec.Rule,
		Coverage:       rec.Coverage,
		Accepted:       rec.Accepted,
		PositivesAfter: rec.PositivesAfter,
		Annotator:      annotator,
	}
	if len(rec.CoverageIDs) > 0 {
		out.CoverageIDs = append([]int(nil), rec.CoverageIDs...)
		sort.Ints(out.CoverageIDs)
	}
	if len(rec.AddedIDs) > 0 {
		out.AddedIDs = append([]int(nil), rec.AddedIDs...)
		sort.Ints(out.AddedIDs)
	}
	return out
}
