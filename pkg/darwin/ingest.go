package darwin

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"

	"repro/internal/ingest"
)

// This file is the SDK client for live corpus ingestion: POST a JSONL batch
// of sentences into a served dataset's corpus. The server appends the batch
// durably (journaled before the response) and extends the dataset's index
// incrementally, so every live labeler starts seeing the new sentences on
// its next suggestion without a rebuild or restart. The wire shape per line
// is ingest.Sentence — identical to the export format, so an exported corpus
// round-trips straight back in.

// IngestResult reports one acknowledged ingestion batch.
type IngestResult struct {
	// Dataset is the dataset the batch was appended to.
	Dataset string `json:"dataset"`
	// From is the sentence ID assigned to the first sentence of the batch;
	// the batch occupies [From, From+Ingested).
	From int `json:"from"`
	// Ingested is the number of sentences appended.
	Ingested int `json:"ingested"`
	// CorpusLen is the dataset's corpus length after the batch.
	CorpusLen int `json:"corpus_len"`
}

// IngestSentences appends a batch of sentences to a served dataset's live
// corpus. The call returns once the batch is durable on the dataset's
// primary (journaled and fsynced); the assigned sentence-ID range is in the
// result. Batches are applied atomically in request order and are not
// idempotent — a retry after a lost response would append the sentences
// twice.
func (c *Client) IngestSentences(ctx context.Context, dataset string, batch []ingest.Sentence) (IngestResult, error) {
	var res IngestResult
	if len(batch) == 0 {
		return res, fmt.Errorf("%w: empty ingest batch", ErrInvalid)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i, s := range batch {
		if err := enc.Encode(s); err != nil {
			return res, fmt.Errorf("%w: encode sentence %d: %v", ErrInvalid, i, err)
		}
	}
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	path := "/v2/datasets/" + url.PathEscape(dataset) + "/sentences"
	resp, err := c.roundTripCT(ctx, http.MethodPost, path, &buf, "application/x-ndjson")
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, fmt.Errorf("%w: decode ingest response: %v", ErrInternal, err)
	}
	return res, nil
}
