package darwin_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/grammar"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/tokensregex"
	"repro/internal/workspace"
	"repro/pkg/darwin"
)

// Compile-time checks: every implementation satisfies the full API.
var (
	_ darwin.Labeler       = (*darwin.SessionLabeler)(nil)
	_ darwin.Labeler       = (*darwin.WorkspaceLabeler)(nil)
	_ darwin.Labeler       = (*darwin.RemoteLabeler)(nil)
	_ darwin.BatchAnswerer = (*darwin.SessionLabeler)(nil)
	_ darwin.BatchAnswerer = (*darwin.WorkspaceLabeler)(nil)
	_ darwin.BatchAnswerer = (*darwin.RemoteLabeler)(nil)
	_ darwin.Statuser      = (*darwin.SessionLabeler)(nil)
	_ darwin.Statuser      = (*darwin.WorkspaceLabeler)(nil)
	_ darwin.Statuser      = (*darwin.RemoteLabeler)(nil)
)

const (
	testDataset  = "directions"
	testSeedRule = "best way to get to"
	testBudget   = 8
)

// newTestEngine builds a small deterministic engine over the synthetic
// directions corpus (the same configuration the core golden-replay test
// pins).
func newTestEngine(t testing.TB) *core.Engine {
	t.Helper()
	c, err := datagen.ByName(testDataset, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(c, core.Config{
		Grammars:        []grammar.Grammar{tokensregex.New()},
		SketchDepth:     4,
		MaxRuleDepth:    6,
		NumCandidates:   400,
		MinRuleCoverage: 2,
		Budget:          30,
		Traversal:       "hybrid",
		Tau:             5,
		Classifier:      classifier.Config{Epochs: 8, LearningRate: 0.3, Seed: 1},
		ClassifierKind:  classifier.KindLogReg,
		Embedding:       embedding.Config{Dim: 24, Window: 3, MinCount: 2, Seed: 1},
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func newTestServer(t testing.TB) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Config{}, &server.Dataset{Name: testDataset, Engine: newTestEngine(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// newRouterTestServer serves the /v2 surface over a sharding router in
// front of two darwind-equivalent shards, so the conformance suite and the
// golden replay drive client → router → shard → core.
func newRouterTestServer(t testing.TB) *httptest.Server {
	t.Helper()
	shardA, shardB := newTestServer(t), newTestServer(t)
	rt, err := shard.New([]shard.Spec{
		{Name: "alpha", URL: shardA.URL},
		{Name: "beta", URL: shardB.URL},
	}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.V2Handler(rt))
	t.Cleanup(ts.Close)
	return ts
}

// factory builds a fresh labeler with the standard test seeds and budget.
type factory func(t *testing.T) darwin.Labeler

// factories enumerates every implementation of the Labeler interface; the
// whole conformance suite runs against each.
func factories() map[string]factory {
	return map[string]factory{
		"session": func(t *testing.T) darwin.Labeler {
			lab, err := darwin.NewSession(newTestEngine(t), testDataset, darwin.Options{
				SeedRules: []string{testSeedRule},
				Budget:    testBudget,
				Seed:      42,
			})
			if err != nil {
				t.Fatal(err)
			}
			return lab
		},
		"workspace": func(t *testing.T) darwin.Labeler {
			eng := newTestEngine(t)
			mgr := workspace.NewManager(map[string]*core.Engine{testDataset: eng}, nil, workspace.ManagerConfig{})
			ws, err := mgr.Create(testDataset, workspace.Options{
				SeedRules: []string{testSeedRule},
				Budget:    testBudget,
				Seed:      42,
			})
			if err != nil {
				t.Fatal(err)
			}
			lab, err := darwin.AttachWorkspace(mgr, ws.ID(), "alice")
			if err != nil {
				t.Fatal(err)
			}
			return lab
		},
		"http-session": func(t *testing.T) darwin.Labeler {
			ts := newTestServer(t)
			lab, err := darwin.NewClient(ts.URL, "").NewLabeler(context.Background(), darwin.CreateOptions{
				Dataset:   testDataset,
				SeedRules: []string{testSeedRule},
				Budget:    testBudget,
				Seed:      42,
			})
			if err != nil {
				t.Fatal(err)
			}
			return lab
		},
		"http-workspace": func(t *testing.T) darwin.Labeler {
			ts := newTestServer(t)
			lab, err := darwin.NewClient(ts.URL, "").NewLabeler(context.Background(), darwin.CreateOptions{
				Dataset:   testDataset,
				Mode:      darwin.ModeWorkspace,
				Annotator: "alice",
				SeedRules: []string{testSeedRule},
				Budget:    testBudget,
				Seed:      42,
			})
			if err != nil {
				t.Fatal(err)
			}
			return lab
		},
		"router-session": func(t *testing.T) darwin.Labeler {
			ts := newRouterTestServer(t)
			lab, err := darwin.NewClient(ts.URL, "").NewLabeler(context.Background(), darwin.CreateOptions{
				Dataset:   testDataset,
				SeedRules: []string{testSeedRule},
				Budget:    testBudget,
				Seed:      42,
			})
			if err != nil {
				t.Fatal(err)
			}
			return lab
		},
		"router-workspace": func(t *testing.T) darwin.Labeler {
			ts := newRouterTestServer(t)
			lab, err := darwin.NewClient(ts.URL, "").NewLabeler(context.Background(), darwin.CreateOptions{
				Dataset:   testDataset,
				Mode:      darwin.ModeWorkspace,
				Annotator: "alice",
				SeedRules: []string{testSeedRule},
				Budget:    testBudget,
				Seed:      42,
			})
			if err != nil {
				t.Fatal(err)
			}
			return lab
		},
	}
}

// TestLabelerConformance runs one shared behavioral suite against every
// implementation of the Labeler interface: the acceptance bar for "one API,
// three interchangeable transports".
func TestLabelerConformance(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			t.Run("SuggestAnswerLoop", func(t *testing.T) { testSuggestAnswerLoop(t, mk(t)) })
			t.Run("AnswerConflicts", func(t *testing.T) { testAnswerConflicts(t, mk(t)) })
			t.Run("BatchAnswers", func(t *testing.T) { testBatchAnswers(t, mk(t)) })
			t.Run("BudgetExhaustion", func(t *testing.T) { testBudgetExhaustion(t, mk(t)) })
			t.Run("Export", func(t *testing.T) { testExport(t, mk(t)) })
			t.Run("Close", func(t *testing.T) { testClose(t, mk(t)) })
		})
	}
}

func testSuggestAnswerLoop(t *testing.T, lab darwin.Labeler) {
	ctx := context.Background()
	defer lab.Close(ctx)

	sug, err := lab.Suggest(ctx)
	if err != nil {
		t.Fatalf("first suggest: %v", err)
	}
	if sug.Key == "" || sug.Rule == "" {
		t.Fatalf("suggestion missing key/rule: %+v", sug)
	}
	if sug.Question != 1 {
		t.Errorf("first question number %d, want 1", sug.Question)
	}
	if sug.Coverage <= 0 {
		t.Errorf("coverage %d, want > 0", sug.Coverage)
	}
	if len(sug.Samples) == 0 {
		t.Error("suggestion carries no samples")
	}
	// Suggest is idempotent while the suggestion is pending.
	again, err := lab.Suggest(ctx)
	if err != nil {
		t.Fatalf("repeated suggest: %v", err)
	}
	if again.Key != sug.Key {
		t.Errorf("repeated suggest changed the pending key: %q -> %q", sug.Key, again.Key)
	}
	if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: true}); err != nil {
		t.Fatalf("answer: %v", err)
	}

	rep, err := lab.Report(ctx)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if rep.Dataset != testDataset {
		t.Errorf("report dataset %q, want %q", rep.Dataset, testDataset)
	}
	if rep.Questions != 1 {
		t.Errorf("report questions %d, want 1", rep.Questions)
	}
	if rep.Budget != testBudget {
		t.Errorf("report budget %d, want %d", rep.Budget, testBudget)
	}
	if len(rep.History) != 1 || rep.History[0].Key != sug.Key || !rep.History[0].Accepted {
		t.Errorf("history does not reflect the accepted answer: %+v", rep.History)
	}
	// The accepted rule (after the seed) carries its coverage IDs.
	if len(rep.Accepted) < 2 {
		t.Fatalf("accepted %d rules, want seed + 1", len(rep.Accepted))
	}
	last := rep.Accepted[len(rep.Accepted)-1]
	if len(last.CoverageIDs) == 0 {
		t.Error("accepted rule carries no coverage IDs")
	}
	if rep.Positives == 0 || len(rep.PositiveIDs) != rep.Positives {
		t.Errorf("positives %d with %d ids", rep.Positives, len(rep.PositiveIDs))
	}

	st, err := lab.(darwin.Statuser).Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Questions != 1 || st.Budget != testBudget || st.Dataset != testDataset {
		t.Errorf("status %+v does not match the run", st)
	}
}

func testAnswerConflicts(t *testing.T, lab darwin.Labeler) {
	ctx := context.Background()
	defer lab.Close(ctx)

	// A keyed answer with nothing pending is a conflict.
	if err := lab.Answer(ctx, darwin.Answer{Key: "tokensregex:nope", Accept: true}); !errors.Is(err, darwin.ErrConflict) {
		t.Errorf("keyed answer without pending: %v, want ErrConflict", err)
	}
	sug, err := lab.Suggest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// A mismatched key is a conflict and leaves the pending suggestion.
	if err := lab.Answer(ctx, darwin.Answer{Key: "tokensregex:wrong key", Accept: true}); !errors.Is(err, darwin.ErrConflict) {
		t.Errorf("mismatched answer: %v, want ErrConflict", err)
	}
	again, err := lab.Suggest(ctx)
	if err != nil || again.Key != sug.Key {
		t.Errorf("pending suggestion lost after conflict: %q vs %q (err %v)", again.Key, sug.Key, err)
	}
	if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: false}); err != nil {
		t.Errorf("matching answer after conflicts: %v", err)
	}
}

func testBatchAnswers(t *testing.T, lab darwin.Labeler) {
	ctx := context.Background()
	defer lab.Close(ctx)

	// Blind batch: each verdict answers the then-pending suggestion.
	recs, err := darwin.AnswerBatch(ctx, lab, []darwin.Answer{
		{Accept: true}, {Accept: false}, {Accept: false},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("batch applied %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Question != i+1 {
			t.Errorf("record %d has question %d, want %d", i, rec.Question, i+1)
		}
	}
	if !recs[0].Accepted || recs[1].Accepted || recs[2].Accepted {
		t.Errorf("batch verdicts not applied in order: %+v", recs)
	}
	rep, err := lab.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Questions != 3 {
		t.Errorf("questions after batch %d, want 3", rep.Questions)
	}
	// A keyed batch entry must match: suggest, then send a wrong key mid-batch.
	sug, err := lab.Suggest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	recs, err = darwin.AnswerBatch(ctx, lab, []darwin.Answer{
		{Key: sug.Key, Accept: false}, {Key: "tokensregex:bogus", Accept: false},
	})
	if !errors.Is(err, darwin.ErrConflict) {
		t.Errorf("mid-batch mismatch: %v, want ErrConflict", err)
	}
	if len(recs) != 1 {
		t.Errorf("fail-fast batch applied %d records, want 1", len(recs))
	}
}

func testBudgetExhaustion(t *testing.T, lab darwin.Labeler) {
	ctx := context.Background()
	defer lab.Close(ctx)

	for i := 0; i < testBudget; i++ {
		sug, err := lab.Suggest(ctx)
		if err != nil {
			t.Fatalf("suggest %d: %v", i, err)
		}
		if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: i%2 == 0}); err != nil {
			t.Fatalf("answer %d: %v", i, err)
		}
	}
	if _, err := lab.Suggest(ctx); !errors.Is(err, darwin.ErrBudgetExhausted) {
		t.Errorf("suggest past budget: %v, want ErrBudgetExhausted", err)
	}
	rep, err := lab.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Done || rep.Questions != testBudget {
		t.Errorf("report after exhaustion: done=%v questions=%d", rep.Done, rep.Questions)
	}
}

func testExport(t *testing.T, lab darwin.Labeler) {
	ctx := context.Background()
	defer lab.Close(ctx)

	var buf bytes.Buffer
	if err := lab.Export(ctx, &buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("export is empty")
	}
	positives := 0
	for _, line := range lines {
		var rec struct {
			ID    int    `json:"id"`
			Text  string `json:"text"`
			Label int    `json:"label"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("export line %q: %v", line, err)
		}
		positives += rec.Label
	}
	if positives == 0 {
		t.Error("export labels no sentence positive despite the seed rule")
	}
}

func testClose(t *testing.T, lab darwin.Labeler) {
	ctx := context.Background()
	if _, err := lab.Suggest(ctx); err != nil {
		t.Fatal(err)
	}
	if err := lab.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := lab.Suggest(ctx); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("suggest after close: %v, want ErrNotFound", err)
	}
}
