package darwin

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Client speaks the versioned /v2 HTTP surface of a darwind server. It is
// safe for concurrent use.
type Client struct {
	base    string
	token   string
	hc      *http.Client
	timeout time.Duration
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithHTTPClient replaces the underlying http.Client (timeouts, transport).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithTimeout bounds every JSON round trip with a per-request deadline. A
// request that exceeds it fails with ErrUnavailable — retryable, so callers
// with a retry policy (the shard router) fail over instead of hanging on a
// wedged server. Export streams are exempt: a large export legitimately
// outlives any per-request deadline, and the http.Client's own Timeout still
// caps it.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// NewClient returns a client for the darwind server at baseURL. token may be
// empty when the server runs without authentication.
func NewClient(baseURL, token string, opts ...ClientOption) *Client {
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		token: token,
		hc:    http.DefaultClient,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// CreateOptions configures a server-side labeler.
type CreateOptions struct {
	// Dataset names the served corpus to label.
	Dataset string `json:"dataset"`
	// Mode is ModeSession (default) or ModeWorkspace.
	Mode string `json:"mode,omitempty"`
	// Workspace, in workspace mode, attaches to this existing workspace
	// instead of creating a new one.
	Workspace string `json:"workspace,omitempty"`
	// Annotator is the annotator name to attach as (required in workspace
	// mode).
	Annotator string `json:"annotator,omitempty"`
	// SeedRules and SeedPositiveIDs seed the positive set.
	SeedRules       []string `json:"seed_rules,omitempty"`
	SeedPositiveIDs []int    `json:"seed_positive_ids,omitempty"`
	// Budget and Seed override the server defaults (0 keeps them).
	Budget int   `json:"budget,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
}

// CreateLabeler creates a labeler on the server and returns its full status
// (ID set). Most callers want NewLabeler, which wraps the status in a
// RemoteLabeler handle; a sharding router uses the status form directly to
// re-expose the created labeler under its own namespace.
func (c *Client) CreateLabeler(ctx context.Context, opts CreateOptions) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/v2/labelers", opts, &st)
	return st, err
}

// NewLabeler creates a labeler on the server and returns its remote handle.
func (c *Client) NewLabeler(ctx context.Context, opts CreateOptions) (*RemoteLabeler, error) {
	st, err := c.CreateLabeler(ctx, opts)
	if err != nil {
		return nil, err
	}
	return &RemoteLabeler{c: c, id: st.ID}, nil
}

// OpenLabeler returns a handle to an existing server-side labeler without a
// round trip; the first call reports ErrNotFound if it does not exist.
func (c *Client) OpenLabeler(id string) *RemoteLabeler {
	return &RemoteLabeler{c: c, id: id}
}

// LabelerPage is one page of the labeler listing.
type LabelerPage struct {
	Labelers []Status `json:"labelers"`
	// NextCursor pages through the listing; empty on the last page.
	NextCursor string `json:"next_cursor,omitempty"`
}

// ListLabelers returns one page of live labelers, starting after cursor
// (empty for the first page). limit <= 0 uses the server default.
func (c *Client) ListLabelers(ctx context.Context, cursor string, limit int) (LabelerPage, error) {
	q := url.Values{}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v2/labelers"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page LabelerPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// DatasetPage is one page of the dataset listing.
type DatasetPage struct {
	Datasets   []string `json:"datasets"`
	NextCursor string   `json:"next_cursor,omitempty"`
}

// ListDatasets returns one page of the datasets the server labels.
func (c *Client) ListDatasets(ctx context.Context, cursor string, limit int) (DatasetPage, error) {
	q := url.Values{}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v2/datasets"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page DatasetPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// do runs one JSON round trip; non-2xx responses decode the /v2 error
// envelope into a typed error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("%w: encode request: %v", ErrInvalid, err)
		}
		body = bytes.NewReader(buf)
	}
	resp, err := c.roundTrip(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("%w: decode %s %s response: %v", ErrInternal, method, path, err)
	}
	return nil
}

// roundTrip issues the request and normalizes transport and protocol errors
// into the typed taxonomy. The caller owns the returned body.
func (c *Client) roundTrip(ctx context.Context, method, path string, body io.Reader) (*http.Response, error) {
	return c.roundTripCT(ctx, method, path, body, "application/json")
}

// roundTripCT is roundTrip with an explicit request content type (the ingest
// endpoint ships JSONL, not a JSON document).
func (c *Client) roundTripCT(ctx context.Context, method, path string, body io.Reader, contentType string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	if id := obs.RequestIDFrom(ctx); id != "" {
		// Propagate the caller's request id so one id traces the whole
		// router → shard path in both daemons' logs.
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env ErrorEnvelope
	if json.Unmarshal(raw, &env) == nil && env.Code != "" {
		return nil, env.Err()
	}
	// Not a /v2 envelope (proxy, v1 handler, ...): classify by status.
	sentinel := ErrInternal
	switch resp.StatusCode {
	case http.StatusBadRequest:
		sentinel = ErrInvalid
	case http.StatusUnauthorized, http.StatusForbidden:
		sentinel = ErrUnauthorized
	case http.StatusNotFound:
		sentinel = ErrNotFound
	case http.StatusConflict:
		sentinel = ErrConflict
	case http.StatusTooManyRequests:
		sentinel = ErrRateLimited
	case http.StatusServiceUnavailable:
		sentinel = ErrUnavailable
	}
	return nil, fmt.Errorf("%w: %s %s: HTTP %d: %s", sentinel, method, path, resp.StatusCode, strings.TrimSpace(string(raw)))
}

// RemoteLabeler drives one server-side labeler over the /v2 surface. It
// implements Labeler, BatchAnswerer and Statuser.
type RemoteLabeler struct {
	c  *Client
	id string
}

// ID returns the server-side labeler ID (use Client.OpenLabeler to resume
// it from another process).
func (r *RemoteLabeler) ID() string { return r.id }

func (r *RemoteLabeler) path(suffix string) string {
	return "/v2/labelers/" + url.PathEscape(r.id) + suffix
}

// Suggest implements Labeler.
func (r *RemoteLabeler) Suggest(ctx context.Context) (Suggestion, error) {
	var sug Suggestion
	err := r.c.do(ctx, http.MethodGet, r.path("/suggestion"), nil, &sug)
	return sug, err
}

// answersRequest and answersResponse are the /v2 batch-answer wire shapes.
type answersRequest struct {
	Answers []Answer `json:"answers"`
}

type answersResponse struct {
	// Applied counts the verdicts applied; Records describes each.
	Applied int          `json:"applied"`
	Records []RuleRecord `json:"records"`
	// Status of the labeler after the batch.
	Questions  int  `json:"questions"`
	BudgetLeft int  `json:"budget_left"`
	Positives  int  `json:"positives"`
	Done       bool `json:"done"`
	// Error is set when the batch stopped early: the verdicts in Records
	// were applied, the rest were not (fail-fast; nothing is rolled back).
	Error *ErrorEnvelope `json:"error,omitempty"`
}

// Answer implements Labeler.
func (r *RemoteLabeler) Answer(ctx context.Context, ans Answer) error {
	_, err := r.AnswerBatch(ctx, []Answer{ans})
	return err
}

// AnswerBatch implements BatchAnswerer: the batch is one POST, applied by
// the server in order and fail-fast. When the batch stops early the server
// responds with the applied prefix plus an embedded error envelope, so the
// returned records are exact even across the wire.
func (r *RemoteLabeler) AnswerBatch(ctx context.Context, answers []Answer) ([]RuleRecord, error) {
	recs, _, err := r.AnswerBatchStatus(ctx, answers)
	return recs, err
}

// AnswerBatchStatus implements BatchStatusAnswerer. The /v2 batch-answers
// response already carries the post-batch counters, so this is the same
// single POST as AnswerBatch — no extra status round trip, and no window in
// which the server can vanish between applying the batch and reporting it.
func (r *RemoteLabeler) AnswerBatchStatus(ctx context.Context, answers []Answer) ([]RuleRecord, Status, error) {
	var resp answersResponse
	if err := r.c.do(ctx, http.MethodPost, r.path("/answers"), answersRequest{Answers: answers}, &resp); err != nil {
		return nil, Status{}, err
	}
	st := Status{
		ID:        r.id,
		Questions: resp.Questions,
		Budget:    resp.Questions + resp.BudgetLeft,
		Positives: resp.Positives,
		Done:      resp.Done,
	}
	if resp.Error != nil {
		return resp.Records, st, resp.Error.Err()
	}
	return resp.Records, st, nil
}

// Report implements Labeler.
func (r *RemoteLabeler) Report(ctx context.Context) (Report, error) {
	var rep Report
	err := r.c.do(ctx, http.MethodGet, r.path("/report"), nil, &rep)
	return rep, err
}

// Export implements Labeler: it streams the server's JSONL export into w.
func (r *RemoteLabeler) Export(ctx context.Context, w io.Writer) error {
	resp, err := r.c.roundTrip(ctx, http.MethodGet, r.path("/export"), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(w, resp.Body); err != nil {
		return fmt.Errorf("%w: stream export: %v", ErrUnavailable, err)
	}
	return nil
}

// Close implements Labeler: it deletes the server-side labeler (for a
// workspace attachment, detaching the annotator).
func (r *RemoteLabeler) Close(ctx context.Context) error {
	return r.c.do(ctx, http.MethodDelete, r.path(""), nil, nil)
}

// Status implements Statuser.
func (r *RemoteLabeler) Status(ctx context.Context) (Status, error) {
	var st Status
	err := r.c.do(ctx, http.MethodGet, r.path(""), nil, &st)
	return st, err
}
