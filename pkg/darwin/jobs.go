package darwin

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/autolabel"
)

// This file is the SDK client for the /v2 labeling-job subsystem: submit a
// corpus-scale auto-labeling job (a committee of rules applied corpus-wide,
// aggregated by the label model), poll its progress, and stream the labeled
// JSONL — plus the synchronous Snuba baseline call. The wire shapes are the
// autolabel package's own (Spec, JobStatus, SnubaRequest, SnubaResult), so
// client and server cannot drift.

func jobPath(dataset, suffix string) string {
	return "/v2/datasets/" + url.PathEscape(dataset) + "/labeling-jobs" + suffix
}

// CreateLabelingJob submits an async labeling job for the dataset and
// returns its queued status (ID set). Set spec.Labeler to a live labeler id
// to label with that labeler's accepted rules; the server resolves the
// reference at submit time, so the job is unaffected by later answers.
func (c *Client) CreateLabelingJob(ctx context.Context, dataset string, spec autolabel.Spec) (autolabel.JobStatus, error) {
	var st autolabel.JobStatus
	err := c.do(ctx, http.MethodPost, jobPath(dataset, ""), spec, &st)
	return st, err
}

// LabelingJob reports a labeling job's status with progress counters.
func (c *Client) LabelingJob(ctx context.Context, dataset, id string) (autolabel.JobStatus, error) {
	var st autolabel.JobStatus
	err := c.do(ctx, http.MethodGet, jobPath(dataset, "/"+url.PathEscape(id)), nil, &st)
	return st, err
}

// LabelingJobOutput streams a done job's labeled JSONL into w, starting at
// byte offset (pass 0 for the whole output; a positive offset resumes an
// interrupted download). A job that is not done fails with ErrConflict
// before any bytes are written.
func (c *Client) LabelingJobOutput(ctx context.Context, dataset, id string, offset int64, w io.Writer) error {
	path := jobPath(dataset, "/"+url.PathEscape(id)+"/output")
	if offset > 0 {
		path += "?offset=" + strconv.FormatInt(offset, 10)
	}
	resp, err := c.roundTrip(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(w, resp.Body); err != nil {
		return fmt.Errorf("%w: stream labeling-job output: %v", ErrUnavailable, err)
	}
	return nil
}

// WaitLabelingJob polls the job until it reaches a terminal state (done or
// failed) or ctx expires, and returns the final status. A failed job is
// returned with a nil error — inspect Status.State / Status.Error.
func (c *Client) WaitLabelingJob(ctx context.Context, dataset, id string, poll time.Duration) (autolabel.JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.LabelingJob(ctx, dataset, id)
		if err != nil {
			return st, err
		}
		if st.State == autolabel.StateDone || st.State == autolabel.StateFailed {
			return st, nil
		}
		t := time.NewTimer(poll)
		select {
		case <-ctx.Done():
			t.Stop()
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// SnubaBaseline mines a Snuba heuristic committee from a gold-labeled seed
// on the server and scores it corpus-wide — optionally alongside an
// interactive rule committee for the Snuba-vs-interactive comparison.
func (c *Client) SnubaBaseline(ctx context.Context, dataset string, req autolabel.SnubaRequest) (autolabel.SnubaResult, error) {
	var res autolabel.SnubaResult
	err := c.do(ctx, http.MethodPost, "/v2/datasets/"+url.PathEscape(dataset)+"/baselines/snuba", req, &res)
	return res, err
}
