package darwin_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/pkg/darwin"
)

// goldenStep is one oracle interaction of the pinned session (recorded from
// the map-based engine before the bitset kernels landed; the same transcript
// internal/core's TestSessionMatchesGoldenReplay pins against the Session
// API directly).
type goldenStep struct {
	key      string
	accept   bool
	coverage int
	benefit  string // Benefit formatted to 6 decimals (bit-identical floats)
}

var goldenTranscript = []goldenStep{
	{"tokensregex:way to get to", true, 6, "1.356743"},
	{"tokensregex:best way to get", true, 5, "1.735721"},
	{"tokensregex:best way to", false, 67, "26.558675"},
	{"tokensregex:the best way to", false, 67, "26.558675"},
	{"tokensregex:best way to order", false, 25, "15.162241"},
	{"tokensregex:best way to check", false, 37, "11.396434"},
	{"tokensregex:to get to", true, 6, "0.000000"},
	{"tokensregex:get to", true, 6, "0.000000"},
	{"tokensregex:get", false, 51, "5.147334"},
	{"tokensregex:i get", false, 42, "5.147334"},
	{"tokensregex:can i get", false, 41, "4.689860"},
	{"tokensregex:can i get a", false, 41, "4.689860"},
}

var goldenPositives = []int{7, 75, 210, 211, 246, 262, 462, 499, 587}

// TestGoldenReplayThroughRemoteLabeler pins the whole new surface end to
// end: the recorded transcript must replay bit-identically through
// darwin.NewClient → HTTP /v2 → server SDK adapter → core.Session — same
// suggestion sequence, same coverage counts, same benefit floats (float64
// survives the JSON round trip exactly), same final positive set.
func TestGoldenReplayThroughRemoteLabeler(t *testing.T) {
	testGoldenReplay(t, newTestServer(t))
}

// TestGoldenReplayThroughRouter pins the sharded deployment to the same
// bar: one extra hop (client → darwin-router's /v2 → shard's /v2 → adapter
// → core) must not perturb a single float or suggestion.
func TestGoldenReplayThroughRouter(t *testing.T) {
	testGoldenReplay(t, newRouterTestServer(t))
}

func testGoldenReplay(t *testing.T, ts *httptest.Server) {
	ctx := context.Background()
	lab, err := darwin.NewClient(ts.URL, "").NewLabeler(ctx, darwin.CreateOptions{
		Dataset:   testDataset,
		SeedRules: []string{testSeedRule},
		Budget:    12,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range goldenTranscript {
		sug, err := lab.Suggest(ctx)
		if err != nil {
			t.Fatalf("step %d: %v (want %q)", i, err, want.key)
		}
		if sug.Key != want.key {
			t.Fatalf("step %d: proposed %q, golden transcript has %q", i, sug.Key, want.key)
		}
		if sug.Coverage != want.coverage {
			t.Errorf("step %d (%s): coverage %d, want %d", i, sug.Key, sug.Coverage, want.coverage)
		}
		if got := fmt.Sprintf("%.6f", sug.Benefit); got != want.benefit {
			t.Errorf("step %d (%s): benefit %s, want %s", i, sug.Key, got, want.benefit)
		}
		if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: want.accept}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := lab.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.PositiveIDs, goldenPositives) {
		t.Errorf("final positives %v, golden %v", rep.PositiveIDs, goldenPositives)
	}
	if !rep.Done {
		t.Error("report not done after the golden budget")
	}
}
