// Package darwin is the public SDK for the DARWIN interactive labeler
// (Galhotra, Gurajada & Tan, SIGMOD'21). It defines the one canonical API —
// the Labeler interface — behind which every deployment mode of the system
// hides: a solo in-process session, an annotator's attachment to a shared
// multi-annotator workspace, and a remote labeler driven over the versioned
// /v2 HTTP surface. All three implementations are interchangeable; callers
// program against Labeler and pick the transport at construction time:
//
//	lab, _ := darwin.NewSession(engine, "directions", darwin.Options{
//		SeedRules: []string{"best way to get to"},
//	})
//	// or: lab, _ := darwin.AttachWorkspace(manager, wsID, "alice")
//	// or: lab, _ := darwin.NewClient(url, token).NewLabeler(ctx, darwin.CreateOptions{...})
//	for {
//		sug, err := lab.Suggest(ctx)
//		if errors.Is(err, darwin.ErrBudgetExhausted) {
//			break
//		}
//		// show sug.Rule and sug.Samples to the annotator ...
//		_ = lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: verdict})
//	}
//	rep, _ := lab.Report(ctx)
//	_ = lab.Export(ctx, file)
//
// Errors are typed (ErrNotFound, ErrConflict, ErrBudgetExhausted, ...); the
// HTTP transport maps them to and from the uniform /v2 error envelope
// {code, message, retryable}, so errors.Is works identically against local
// and remote labelers.
package darwin

import (
	"context"
	"io"
)

// A Labeler is one interactive rule-discovery loop: Suggest proposes the
// most promising unverified candidate rule, Answer records the annotator's
// verdict, Report snapshots the run, and Export writes the labeled corpus.
// Implementations are safe for concurrent use; calls on one labeler are
// serialized.
type Labeler interface {
	// Suggest returns the pending candidate rule to verify, assigning a new
	// one if none is pending. It fails with ErrBudgetExhausted when the
	// labeler is done (budget spent or no candidates remain).
	Suggest(ctx context.Context) (Suggestion, error)
	// Answer records a verdict on the pending suggestion. A non-empty Key
	// must match the pending suggestion's key (ErrConflict otherwise); an
	// empty Key answers whatever is pending, requesting a suggestion first
	// if none is. Implementations journal the applied verdict durably
	// before returning (the answer survives a crash once Answer returns).
	//
	//darwin:journals
	Answer(ctx context.Context, ans Answer) error
	// Report snapshots the discovery state so far.
	Report(ctx context.Context) (Report, error)
	// Export writes the labeled corpus as JSONL, one {"id","text","label"}
	// object per sentence.
	Export(ctx context.Context, w io.Writer) error
	// Close releases the labeler. For a workspace attachment it detaches the
	// annotator (releasing any pending suggestion back to the pool); for a
	// remote labeler it deletes the server-side resource.
	Close(ctx context.Context) error
}

// BatchAnswerer is implemented by every Labeler in this package: it applies
// several verdicts in one call (one critical section for local labelers, one
// round trip for remote ones), returning the record of each applied answer.
// On error the returned records cover the prefix that was applied.
type BatchAnswerer interface {
	// AnswerBatch journals the applied records before returning, like
	// Labeler.Answer.
	//
	//darwin:journals
	AnswerBatch(ctx context.Context, answers []Answer) ([]RuleRecord, error)
}

// Statuser is implemented by every Labeler in this package: a cheap status
// poll that does not copy the full report.
type Statuser interface {
	Status(ctx context.Context) (Status, error)
}

// BatchStatusAnswerer is implemented by every Labeler in this package: it
// applies a batch of verdicts and returns the post-batch status in the same
// call. For local labelers that means one critical section; for remote ones
// a single round trip. The serving layer prefers it over BatchAnswerer +
// Statuser because the combined form removes the window in which the
// labeler's process can die between a durably-applied batch and the status
// poll that reports it. On error the records cover the applied prefix and
// the status reflects the labeler after that prefix (zero when nothing can
// be read).
type BatchStatusAnswerer interface {
	// AnswerBatchStatus journals the applied records before returning, like
	// Labeler.Answer.
	//
	//darwin:journals
	AnswerBatchStatus(ctx context.Context, answers []Answer) ([]RuleRecord, Status, error)
}

// AnswerBatch applies several verdicts through l, using the single-call
// batch path when l implements BatchAnswerer (all labelers in this package
// do) and falling back to one Answer per verdict otherwise (in which case
// the returned records are nil).
func AnswerBatch(ctx context.Context, l Labeler, answers []Answer) ([]RuleRecord, error) {
	if b, ok := l.(BatchAnswerer); ok {
		return b.AnswerBatch(ctx, answers)
	}
	for _, ans := range answers {
		if err := l.Answer(ctx, ans); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// Modes a labeler can run in.
const (
	// ModeSession is a solo session: the labeler owns its discovery state.
	ModeSession = "session"
	// ModeWorkspace is an annotator's attachment to a shared workspace.
	ModeWorkspace = "workspace"
)

// Sample is one example sentence shown alongside a suggestion (Figure 2 of
// the paper).
type Sample struct {
	ID   int    `json:"id"`
	Text string `json:"text"`
}

// Suggestion is one candidate rule proposed for verification.
type Suggestion struct {
	// Key identifies the rule; pass it back in Answer.
	Key string `json:"key"`
	// Rule is the human-readable rule specification.
	Rule string `json:"rule"`
	// Coverage is the number of sentences the rule matches; NewCoverage how
	// many of those are not yet in the positive set.
	Coverage    int `json:"coverage"`
	NewCoverage int `json:"new_coverage"`
	// Benefit is the expected number of true positives the rule would add
	// (Σ p_s over the new coverage); AvgBenefit is Benefit/NewCoverage.
	Benefit    float64 `json:"benefit"`
	AvgBenefit float64 `json:"avg_benefit"`
	// Question is this suggestion's 1-based question number; BudgetLeft the
	// remaining oracle budget.
	Question   int `json:"question"`
	BudgetLeft int `json:"budget_left"`
	// Samples are example sentences from the rule's coverage.
	Samples []Sample `json:"samples,omitempty"`
}

// Answer is one verdict on a pending suggestion.
type Answer struct {
	// Key of the suggestion being answered. Empty answers the pending
	// suggestion (requesting one if none is pending), which lets scripted
	// clients batch blind verdicts.
	Key string `json:"key,omitempty"`
	// Accept is the verdict: is the rule adequately precise?
	Accept bool `json:"accept"`
}

// RuleRecord describes one oracle interaction (or seed rule).
type RuleRecord struct {
	// Question is the 1-based question number (0 for seed rules).
	Question int    `json:"question"`
	Key      string `json:"key"`
	Rule     string `json:"rule"`
	// Coverage is |C_r|.
	Coverage int  `json:"coverage"`
	Accepted bool `json:"accepted"`
	// CoverageIDs is the full coverage set of accepted rules (nil for
	// rejected rules); AddedIDs the sentences it newly added to P.
	CoverageIDs []int `json:"coverage_ids,omitempty"`
	AddedIDs    []int `json:"added_ids,omitempty"`
	// PositivesAfter is |P| after this record.
	PositivesAfter int `json:"positives_after"`
	// Annotator is who answered (workspace mode; empty for solo sessions
	// and seed rules).
	Annotator string `json:"annotator,omitempty"`
}

// ClassifierInfo summarizes the trained sentence classifier.
type ClassifierInfo struct {
	Trained            bool    `json:"trained"`
	Retrains           int     `json:"retrains"`
	MeanScore          float64 `json:"mean_score"`
	PredictedPositives int     `json:"predicted_positives"`
}

// Report is a deterministic snapshot of a discovery run: it carries no
// wall-clock or process-local fields, so equal event sequences yield
// byte-identical serialized reports regardless of which surface (v1, v2,
// local, remote) drove them.
type Report struct {
	Dataset   string `json:"dataset"`
	Mode      string `json:"mode"`
	Budget    int    `json:"budget"`
	Questions int    `json:"questions"`
	Done      bool   `json:"done"`
	// Positives is |P|; PositiveIDs the sorted discovered positive set.
	Positives   int   `json:"positives"`
	PositiveIDs []int `json:"positive_ids"`
	// Accepted lists accepted rules (seeds included) in acceptance order;
	// History every oracle query in order (seeds excluded).
	Accepted []RuleRecord `json:"accepted"`
	History  []RuleRecord `json:"history"`
	// Classifier is set for workspace-backed labelers, whose shared
	// classifier state is part of the durable workspace.
	Classifier *ClassifierInfo `json:"classifier,omitempty"`
}

// Status is a cheap labeler status poll.
type Status struct {
	// ID is the server-side labeler ID (empty for local labelers).
	ID      string `json:"id,omitempty"`
	Dataset string `json:"dataset"`
	Mode    string `json:"mode"`
	// Workspace and Annotator identify a workspace attachment.
	Workspace string `json:"workspace,omitempty"`
	Annotator string `json:"annotator,omitempty"`
	Budget    int    `json:"budget"`
	Questions int    `json:"questions"`
	Positives int    `json:"positives"`
	Done      bool   `json:"done"`
}
