package darwin

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// TestErrorTaxonomy pins the sentinel ↔ {code, status, retryable} mapping
// in one table: the server serves these triples, the client maps them back,
// and the round trip must preserve errors.Is identity and the message.
func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		sentinel  error
		code      string
		status    int
		retryable bool
	}{
		{ErrInvalid, CodeInvalid, http.StatusBadRequest, false},
		{ErrUnauthorized, CodeUnauthorized, http.StatusUnauthorized, false},
		{ErrNotFound, CodeNotFound, http.StatusNotFound, false},
		{ErrConflict, CodeConflict, http.StatusConflict, false},
		{ErrBudgetExhausted, CodeBudgetExhausted, http.StatusConflict, false},
		{ErrRateLimited, CodeRateLimited, http.StatusTooManyRequests, true},
		{ErrUnavailable, CodeUnavailable, http.StatusServiceUnavailable, true},
		{ErrInternal, CodeInternal, http.StatusInternalServerError, false},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			wrapped := fmt.Errorf("%w: it went wrong", tc.sentinel)
			if got := Code(wrapped); got != tc.code {
				t.Errorf("Code = %q, want %q", got, tc.code)
			}
			if got := HTTPStatus(wrapped); got != tc.status {
				t.Errorf("HTTPStatus = %d, want %d", got, tc.status)
			}
			if got := Retryable(wrapped); got != tc.retryable {
				t.Errorf("Retryable = %v, want %v", got, tc.retryable)
			}
			env := Envelope(wrapped)
			if env.Code != tc.code || env.Retryable != tc.retryable {
				t.Errorf("Envelope = %+v, want code %q retryable %v", env, tc.code, tc.retryable)
			}
			if env.Message != "it went wrong" {
				t.Errorf("Envelope message %q did not strip the sentinel prefix", env.Message)
			}
			back := env.Err()
			if !errors.Is(back, tc.sentinel) {
				t.Errorf("round-tripped error %v does not match sentinel %v", back, tc.sentinel)
			}
		})
	}
}

func TestUnknownCodeMapsToInternal(t *testing.T) {
	env := ErrorEnvelope{Code: "galactic_misalignment", Message: "stars are off"}
	if !errors.Is(env.Err(), ErrInternal) {
		t.Errorf("unknown code should map to ErrInternal, got %v", env.Err())
	}
	if got := Code(errors.New("plain")); got != CodeInternal {
		t.Errorf("untyped error code = %q, want %q", got, CodeInternal)
	}
}

// TestWrapPreservesExistingSentinel pins that wrap never re-tags an error
// that already carries a taxonomy sentinel.
func TestWrapPreservesExistingSentinel(t *testing.T) {
	inner := fmt.Errorf("%w: original", ErrNotFound)
	out := wrap(ErrConflict, inner)
	if !errors.Is(out, ErrNotFound) || errors.Is(out, ErrConflict) {
		t.Errorf("wrap re-tagged the error: %v", out)
	}
	if wrap(ErrConflict, nil) != nil {
		t.Error("wrap(nil) must be nil")
	}
}
