package darwin

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/workspace"
)

// WorkspaceLabeler adapts one annotator's attachment to a shared
// multi-annotator workspace to the Labeler interface. All state-changing
// calls go through the workspace manager, inheriting its journaling gate and
// TTL refresh; serialization across annotators is the workspace's own lock,
// so a batch of answers may interleave with other annotators exactly as the
// equivalent sequence of single calls would.
type WorkspaceLabeler struct {
	mgr       *workspace.Manager
	eng       *core.Engine
	wsID      string
	annotator string
	// detach marks a labeler whose Close detaches the annotator (labelers
	// created by AttachWorkspace); labelers merely bound to an existing
	// attachment leave it in place.
	detach bool

	mu     sync.Mutex
	closed bool
}

// AttachWorkspace attaches a new annotator to the workspace and returns the
// attachment as a Labeler; Close detaches it again.
func AttachWorkspace(mgr *workspace.Manager, wsID, annotator string) (*WorkspaceLabeler, error) {
	if annotator == "" {
		return nil, fmt.Errorf("%w: annotator name is required", ErrInvalid)
	}
	l, err := BindWorkspace(mgr, wsID, annotator)
	if err != nil {
		return nil, err
	}
	if err := mgr.Attach(wsID, annotator); err != nil {
		return nil, mapWorkspaceErr(err)
	}
	l.detach = true
	return l, nil
}

// AdoptWorkspace wraps an annotator's already-existing attachment as a
// Labeler that owns it: like AttachWorkspace, Close detaches the annotator —
// but the attachment itself is not created here. The serving layer uses it
// to re-adopt journaled attachments after a restart, so a recovered
// workspace's labelers keep their delete-detaches semantics.
func AdoptWorkspace(mgr *workspace.Manager, wsID, annotator string) (*WorkspaceLabeler, error) {
	if annotator == "" {
		return nil, fmt.Errorf("%w: annotator name is required", ErrInvalid)
	}
	l, err := BindWorkspace(mgr, wsID, annotator)
	if err != nil {
		return nil, err
	}
	l.detach = true
	return l, nil
}

// BindWorkspace wraps an already-attached annotator as a Labeler without
// touching the attachment (Close leaves it in place). The serving layer uses
// it to answer v1 and v2 requests over one code path.
func BindWorkspace(mgr *workspace.Manager, wsID, annotator string) (*WorkspaceLabeler, error) {
	ws, ok := mgr.Get(wsID)
	if !ok {
		return nil, fmt.Errorf("%w: unknown or expired workspace %q", ErrNotFound, wsID)
	}
	eng, ok := mgr.Engine(ws.Dataset())
	if !ok {
		return nil, fmt.Errorf("%w: dataset %q is not served", ErrNotFound, ws.Dataset())
	}
	return &WorkspaceLabeler{mgr: mgr, eng: eng, wsID: wsID, annotator: annotator}, nil
}

// Workspace returns the workspace ID this labeler is attached to.
func (l *WorkspaceLabeler) Workspace() string { return l.wsID }

// Annotator returns the annotator name this labeler answers as.
func (l *WorkspaceLabeler) Annotator() string { return l.annotator }

func (l *WorkspaceLabeler) live() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("%w: labeler is closed", ErrNotFound)
	}
	return nil
}

// Suggest implements Labeler: it returns the annotator's pending suggestion
// or assigns the most promising candidate no other annotator holds.
func (l *WorkspaceLabeler) Suggest(ctx context.Context) (Suggestion, error) {
	if err := l.live(); err != nil {
		return Suggestion{}, err
	}
	sug, ok, err := l.mgr.Suggest(l.wsID, l.annotator)
	if err != nil {
		return Suggestion{}, mapWorkspaceErr(err)
	}
	if !ok {
		return Suggestion{}, fmt.Errorf("%w: shared budget spent or no candidates remain", ErrBudgetExhausted)
	}
	out := Suggestion{
		Key:         sug.Key,
		Rule:        sug.Rule,
		Coverage:    sug.Coverage,
		NewCoverage: sug.NewCoverage,
		Benefit:     sug.Benefit,
		AvgBenefit:  sug.AvgBenefit,
		Question:    sug.Question,
		BudgetLeft:  sug.BudgetLeft,
		Samples:     samplesFrom(l.eng.Corpus(), sug.SampleIDs),
	}
	return out, nil
}

// Answer implements Labeler.
func (l *WorkspaceLabeler) Answer(ctx context.Context, ans Answer) error {
	_, err := l.AnswerBatch(ctx, []Answer{ans})
	return err
}

// AnswerBatch implements BatchAnswerer. Every applied answer is journaled
// individually through the workspace's write-ahead log (the same events the
// single-call path appends), so recovery replays the batch exactly.
func (l *WorkspaceLabeler) AnswerBatch(ctx context.Context, answers []Answer) ([]RuleRecord, error) {
	if err := l.live(); err != nil {
		return nil, err
	}
	var recs []RuleRecord
	for i, ans := range answers {
		key := ans.Key
		if key == "" || i > 0 {
			// Resolve (or assign) the pending suggestion; Suggest is
			// idempotent while one is pending, so a keyed first answer after
			// a client-side suggest sees the same key again.
			sug, ok, err := l.mgr.Suggest(l.wsID, l.annotator)
			if err != nil {
				return recs, batchErr(i, len(answers), mapWorkspaceErr(err))
			}
			if !ok {
				return recs, batchErr(i, len(answers),
					fmt.Errorf("%w: shared budget spent or no candidates remain", ErrBudgetExhausted))
			}
			if key == "" {
				key = sug.Key
			}
		}
		rec, err := l.mgr.Answer(l.wsID, l.annotator, key, ans.Accept)
		if err != nil {
			return recs, batchErr(i, len(answers), mapWorkspaceErr(err))
		}
		recs = append(recs, coreRecord(rec.RuleRecord, rec.Annotator))
	}
	return recs, nil
}

// AnswerBatchStatus implements BatchStatusAnswerer: the batch followed by a
// status read of the shared workspace. Workspaces serialize per event (other
// annotators may interleave), so the status is simply the workspace after
// this caller's applied prefix plus any concurrent progress — the same
// guarantee two separate calls gave, without the second round trip.
func (l *WorkspaceLabeler) AnswerBatchStatus(ctx context.Context, answers []Answer) ([]RuleRecord, Status, error) {
	recs, batchErr := l.AnswerBatch(ctx, answers)
	if batchErr != nil && len(recs) == 0 {
		return nil, Status{}, batchErr
	}
	st, stErr := l.Status(ctx)
	if batchErr != nil {
		return recs, st, batchErr
	}
	return recs, st, stErr
}

// Report implements Labeler: the report of the shared workspace.
func (l *WorkspaceLabeler) Report(ctx context.Context) (Report, error) {
	if err := l.live(); err != nil {
		return Report{}, err
	}
	ws, ok := l.mgr.Get(l.wsID)
	if !ok {
		return Report{}, fmt.Errorf("%w: unknown or expired workspace %q", ErrNotFound, l.wsID)
	}
	rep := ws.Report()
	out := Report{
		Dataset:     rep.Dataset,
		Mode:        ModeWorkspace,
		Budget:      rep.Budget,
		Questions:   rep.Questions,
		Done:        rep.Done,
		Positives:   rep.PositiveCount,
		PositiveIDs: rep.Positives,
		Accepted:    make([]RuleRecord, 0, len(rep.Accepted)),
		History:     make([]RuleRecord, 0, len(rep.History)),
		Classifier: &ClassifierInfo{
			Trained:            rep.Classifier.Trained,
			Retrains:           rep.Classifier.Retrains,
			MeanScore:          rep.Classifier.MeanScore,
			PredictedPositives: rep.Classifier.PredictedPositives,
		},
	}
	for _, rec := range rep.Accepted {
		out.Accepted = append(out.Accepted, coreRecord(rec.RuleRecord, rec.Annotator))
	}
	for _, rec := range rep.History {
		out.History = append(out.History, coreRecord(rec.RuleRecord, rec.Annotator))
	}
	return out, nil
}

// Export implements Labeler: the labeled corpus of the shared positive set.
func (l *WorkspaceLabeler) Export(ctx context.Context, w io.Writer) error {
	if err := l.live(); err != nil {
		return err
	}
	ws, ok := l.mgr.Get(l.wsID)
	if !ok {
		return fmt.Errorf("%w: unknown or expired workspace %q", ErrNotFound, l.wsID)
	}
	return l.eng.Corpus().WriteLabeledJSONL(w, ws.PositivesMap())
}

// Close implements Labeler: it detaches the annotator when the labeler
// created the attachment (releasing any pending suggestion back to the
// pool). The workspace itself lives on. The labeler is marked closed only
// once the detach succeeded (or the attachment is already gone), so a
// failed detach — e.g. a broken journal — can be retried.
func (l *WorkspaceLabeler) Close(ctx context.Context) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	detach := l.detach
	l.mu.Unlock()
	if detach {
		err := l.mgr.Detach(l.wsID, l.annotator)
		if err != nil &&
			!errors.Is(err, workspace.ErrUnknownWorkspace) &&
			!errors.Is(err, workspace.ErrUnknownAnnotator) {
			return mapWorkspaceErr(err)
		}
	}
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return nil
}

// Status implements Statuser.
func (l *WorkspaceLabeler) Status(ctx context.Context) (Status, error) {
	if err := l.live(); err != nil {
		return Status{}, err
	}
	ws, ok := l.mgr.Get(l.wsID)
	if !ok {
		return Status{}, fmt.Errorf("%w: unknown or expired workspace %q", ErrNotFound, l.wsID)
	}
	questions, positives, done := ws.Stats()
	return Status{
		Dataset:   ws.Dataset(),
		Mode:      ModeWorkspace,
		Workspace: l.wsID,
		Annotator: l.annotator,
		Budget:    ws.Budget(),
		Questions: questions,
		Positives: positives,
		Done:      done,
	}, nil
}

// mapWorkspaceErr attaches the matching API sentinel to a workspace-layer
// error, preserving its message and chain.
func mapWorkspaceErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errorsIsAny(err, workspace.ErrUnknownWorkspace, workspace.ErrUnknownAnnotator):
		return wrap(ErrNotFound, err)
	case errorsIsAny(err, workspace.ErrDuplicateAnnotator, workspace.ErrNoPending, workspace.ErrKeyMismatch):
		return wrap(ErrConflict, err)
	case errorsIsAny(err, workspace.ErrJournal):
		return wrap(ErrUnavailable, err)
	default:
		return wrap(ErrInvalid, err)
	}
}

func errorsIsAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
