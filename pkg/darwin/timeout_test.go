package darwin_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/pkg/darwin"
)

// TestWithTimeoutFailsFastAndRetryable pins the hang-protection contract: a
// server that accepts the request but never answers must fail within the
// per-request deadline, and the failure must be the retryable ErrUnavailable
// so routers fail over instead of surfacing a terminal error.
func TestWithTimeoutFailsFastAndRetryable(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hung.Close()

	c := darwin.NewClient(hung.URL, "", darwin.WithTimeout(100*time.Millisecond))
	start := time.Now()
	_, err := c.ListDatasets(context.Background(), "", 0)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("request against a hung server succeeded")
	}
	if !errors.Is(err, darwin.ErrUnavailable) {
		t.Fatalf("hung-server error = %v, want ErrUnavailable", err)
	}
	if !darwin.Retryable(err) {
		t.Fatalf("timeout error %v is not retryable", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timed out after %v; the 100ms deadline did not bound the request", elapsed)
	}
}

// TestWithTimeoutRespectsCallerDeadline: an already-tighter caller context
// still wins over the configured per-request timeout.
func TestWithTimeoutRespectsCallerDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hung.Close()

	c := darwin.NewClient(hung.URL, "", darwin.WithTimeout(time.Minute))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.ListDatasets(ctx, "", 0)
	if err == nil {
		t.Fatal("request outlived its caller's context")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("caller deadline ignored; returned after %v", elapsed)
	}
}
