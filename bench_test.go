// Package repro's root benchmark suite regenerates every table and figure of
// the paper at CI scale (QuickOptions: 5-6% of the Table 1 corpus sizes, a
// budget of 30-40 questions). Each benchmark reports the headline quantity of
// its experiment via b.ReportMetric so `go test -bench` output doubles as a
// compact reproduction summary; cmd/benchrunner prints the full rows/series
// and supports the larger presets.
package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// metricName sanitizes a label for use as a benchmark metric unit (no
// whitespace allowed).
func metricName(label, suffix string) string {
	return strings.ReplaceAll(label, " ", "-") + suffix
}

// benchOptions returns the options used by the root benchmarks.
func benchOptions() experiments.Options {
	o := experiments.QuickOptions()
	o.Scale = 0.06
	o.Budget = 40
	o.NumCandidates = 600
	return o
}

// BenchmarkTable1DatasetStats regenerates Table 1 (dataset statistics).
func BenchmarkTable1DatasetStats(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := o.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("expected 5 datasets, got %d", len(rows))
		}
	}
}

// BenchmarkFigure7SeedSize regenerates Figure 7 (coverage vs. random seed-set
// size, Snuba vs Darwin(HS)) on the directions dataset.
func BenchmarkFigure7SeedSize(b *testing.B) {
	o := benchOptions()
	var last experiments.SeedSizeResult
	for i := 0; i < b.N; i++ {
		res, err := o.Figure7("directions", []int{25, 200})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if len(last.Points) == 2 {
		b.ReportMetric(last.Points[0].Darwin, "darwin-cov@25seeds")
		b.ReportMetric(last.Points[0].Snuba, "snuba-cov@25seeds")
		b.ReportMetric(last.Points[1].Darwin, "darwin-cov@200seeds")
		b.ReportMetric(last.Points[1].Snuba, "snuba-cov@200seeds")
	}
}

// BenchmarkFigure8BiasedSeed regenerates Figure 8 (biased seeds withholding
// the "shuttle" token) on the directions dataset.
func BenchmarkFigure8BiasedSeed(b *testing.B) {
	o := benchOptions()
	var last experiments.SeedSizeResult
	for i := 0; i < b.N; i++ {
		res, err := o.Figure8("directions", []int{200}, experiments.WithheldTokenFor("directions"))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if len(last.Points) == 1 {
		b.ReportMetric(last.Points[0].Darwin, "darwin-cov")
		b.ReportMetric(last.Points[0].Snuba, "snuba-cov")
	}
}

// BenchmarkFigure9Coverage regenerates the coverage panels of Figure 9 on the
// directions dataset (Darwin variants + HighP).
func BenchmarkFigure9Coverage(b *testing.B) {
	o := benchOptions()
	var last experiments.MethodCurves
	for i := 0; i < b.N; i++ {
		res, err := o.Figure9("directions")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, m := range []string{"darwin-hs", "darwin-us", "darwin-ls", "highP"} {
		if c, ok := last.Coverage[m]; ok {
			b.ReportMetric(c.Final(), m+"-cov")
		}
	}
}

// BenchmarkFigure9FScore regenerates the F-score panels of Figure 9 on the
// tweets (Food intent) dataset, including the AL and KS baselines.
func BenchmarkFigure9FScore(b *testing.B) {
	o := benchOptions()
	o.Scale = 0.5 // tweets is tiny (2130 sentences at full scale)
	var last experiments.MethodCurves
	for i := 0; i < b.N; i++ {
		res, err := o.Figure9("tweets")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, m := range []string{"darwin-hs", "highP", "AL", "KS"} {
		if c, ok := last.FScore[m]; ok {
			b.ReportMetric(c.Final(), m+"-f1")
		}
	}
}

// BenchmarkFigure10Professions regenerates Figure 10 (professions, the
// largest and most imbalanced dataset).
func BenchmarkFigure10Professions(b *testing.B) {
	o := benchOptions()
	o.Scale = 0.05 // 5K professions sentences
	var last experiments.MethodCurves
	for i := 0; i < b.N; i++ {
		res, err := o.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if c, ok := last.Coverage["darwin-hs"]; ok {
		b.ReportMetric(c.Final(), "darwin-hs-cov")
	}
	if c, ok := last.FScore["darwin-hs"]; ok {
		b.ReportMetric(c.Final(), "darwin-hs-f1")
	}
}

// BenchmarkFigure11Traversals regenerates the qualitative rule-traversal
// traces of Figure 11.
func BenchmarkFigure11Traversals(b *testing.B) {
	o := benchOptions()
	var accepted int
	for i := 0; i < b.N; i++ {
		traces, err := o.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		accepted = 0
		for _, tr := range traces {
			for _, s := range tr.Steps {
				if s.Accepted {
					accepted++
				}
			}
		}
	}
	b.ReportMetric(float64(accepted), "accepted-rules")
}

// BenchmarkTable2Snorkel regenerates Table 2 (Darwin vs Darwin+Snorkel) on
// the directions dataset.
func BenchmarkTable2Snorkel(b *testing.B) {
	o := benchOptions()
	var last []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows, err := o.Table2()
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, row := range last {
		b.ReportMetric(row.Darwin, row.Dataset+"-darwin-f1")
		b.ReportMetric(row.DarwinSnorkel, row.Dataset+"-snorkel-f1")
	}
}

// BenchmarkEfficiencyIndexBuild measures index construction alone on a 5K
// professions corpus (§4.5 reports <5 min for the full corpora).
func BenchmarkEfficiencyIndexBuild(b *testing.B) {
	o := benchOptions()
	o.Budget = 5
	var res []experiments.EfficiencyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = o.Efficiency([]int{5000})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res) == 1 {
		b.ReportMetric(res[0].IndexBuild.Seconds(), "index-build-s")
	}
}

// BenchmarkEfficiencyEndToEnd measures an end-to-end Darwin(HS) run on a 10K
// professions corpus (§4.5's end-to-end label-collection time).
func BenchmarkEfficiencyEndToEnd(b *testing.B) {
	o := benchOptions()
	var res []experiments.EfficiencyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = o.Efficiency([]int{10000})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res) == 1 {
		b.ReportMetric(res[0].TotalRun.Seconds(), "end-to-end-s")
		b.ReportMetric(res[0].Coverage, "coverage")
	}
}

// BenchmarkHumanAnnotators regenerates the §4.5 crowd-annotator study.
func BenchmarkHumanAnnotators(b *testing.B) {
	o := benchOptions()
	var last experiments.HumanAnnotatorsResult
	for i := 0; i < b.N; i++ {
		res, err := o.HumanAnnotators(0.05)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.PerfectCoverage, "perfect-cov")
	b.ReportMetric(last.CrowdCoverage, "crowd-cov")
	b.ReportMetric(float64(last.CrowdFalseYes), "false-yes")
}

// BenchmarkFigure12Tau regenerates Figure 12a (sensitivity to τ).
func BenchmarkFigure12Tau(b *testing.B) {
	o := benchOptions()
	o.Budget = 30
	var last []experiments.ParamCurve
	for i := 0; i < b.N; i++ {
		res, err := o.Figure12Tau([]int{3, 5, 7, 9})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, pc := range last {
		b.ReportMetric(pc.Curve.Final(), metricName(pc.Label, "-cov"))
	}
}

// BenchmarkFigure12Seeds regenerates Figure 12b (sensitivity to the seed
// rule).
func BenchmarkFigure12Seeds(b *testing.B) {
	o := benchOptions()
	o.Budget = 30
	var last []experiments.ParamCurve
	for i := 0; i < b.N; i++ {
		res, err := o.Figure12Seeds(nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, pc := range last {
		b.ReportMetric(pc.Curve.Final(), metricName(pc.Label, "-cov"))
	}
}

// BenchmarkFigure13Candidates regenerates Figure 13 (sensitivity to the
// number of generated candidates).
func BenchmarkFigure13Candidates(b *testing.B) {
	o := benchOptions()
	o.Budget = 30
	var last []experiments.ParamCurve
	for i := 0; i < b.N; i++ {
		res, err := o.Figure13Candidates([]int{300, 600, 1200})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, pc := range last {
		b.ReportMetric(pc.Curve.Final(), metricName(pc.Label, "-cov"))
	}
}

// BenchmarkFigure14Epochs regenerates Figure 14 (classifier quality vs.
// questions needed to reach the target coverage).
func BenchmarkFigure14Epochs(b *testing.B) {
	o := benchOptions()
	o.Budget = 30
	var last []experiments.EpochsPoint
	for i := 0; i < b.N; i++ {
		res, err := o.Figure14Epochs([]int{4, 8, 12}, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, p := range last {
		b.ReportMetric(float64(p.QuestionsToTarget), "epochs"+itoa(p.Epochs)+"-questions")
	}
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var digits []byte
	for x > 0 {
		digits = append([]byte{byte('0' + x%10)}, digits...)
		x /= 10
	}
	return string(digits)
}
